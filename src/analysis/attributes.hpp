// Checkpointable per-statement annotation structures (paper Figs. 2 and 4).
//
//   Attributes ──► SEEntry            (side-effect read/write sets)
//              ──► BTEntry ──► BT     (binding-time annotation)
//              ──► ETEntry ──► ET     (evaluation-time annotation)
//
// Every mutator is compare-and-set: the modified flag is raised only when
// the value actually changes, so an analysis iteration that re-derives the
// same annotation leaves the object clean — this is what makes incremental
// checkpoints shrink as the fixpoint converges (paper Table 1, min vs max).
#pragma once

#include <algorithm>
#include <span>

#include "analysis/write_witness.hpp"
#include "common/error.hpp"
#include "core/checkpoint.hpp"
#include "core/checkpointable.hpp"
#include "core/recovery.hpp"
#include "core/type_registry.hpp"

namespace ickpt::analysis {

/// Binding-time / evaluation-time annotation values.
inline constexpr std::uint8_t kStatic = 0;
inline constexpr std::uint8_t kDynamic = 1;
inline constexpr std::uint8_t kEvaluable = 0;
inline constexpr std::uint8_t kResidual = 1;

/// Side-effect entry: the sets of global variables read and written by the
/// statement (paper: "Side-effect analysis collects sets of variables").
class SEEntry final : public core::WithCheckpointInfo {
 public:
  static constexpr TypeId kTypeId = 202;
  static constexpr const char* kTypeName = "analysis.SEEntry";
  static constexpr int kMaxVars = 48;

  SEEntry() = default;
  SEEntry(core::RestoreTag, ObjectId id) : WithCheckpointInfo(id) {}

  [[nodiscard]] std::span<const std::int32_t> reads() const noexcept {
    return {reads_, static_cast<std::size_t>(nreads_)};
  }
  [[nodiscard]] std::span<const std::int32_t> writes() const noexcept {
    return {writes_, static_cast<std::size_t>(nwrites_)};
  }

  /// Replace both sets (must be sorted); flags only on a real change.
  void set_sets(std::span<const std::int32_t> reads,
                std::span<const std::int32_t> writes) {
    if (reads.size() > kMaxVars || writes.size() > kMaxVars)
      throw AnalysisError("side-effect set exceeds SEEntry capacity");
    bool changed = !std::equal(reads.begin(), reads.end(), this->reads().begin(),
                               this->reads().end()) ||
                   !std::equal(writes.begin(), writes.end(),
                               this->writes().begin(), this->writes().end());
    if (!changed) return;
    nreads_ = static_cast<std::int32_t>(reads.size());
    std::copy(reads.begin(), reads.end(), reads_);
    nwrites_ = static_cast<std::int32_t>(writes.size());
    std::copy(writes.begin(), writes.end(), writes_);
    info_.set_modified();
    witness_write(AttrField::kSe);
  }

  [[nodiscard]] TypeId type_id() const noexcept override { return kTypeId; }

  void record(io::DataWriter& d) const override {
    // "records both lists" (paper Fig. 5).
    d.write_i32(nreads_);
    for (std::int32_t i = 0; i < nreads_; ++i) d.write_i32(reads_[i]);
    d.write_i32(nwrites_);
    for (std::int32_t i = 0; i < nwrites_; ++i) d.write_i32(writes_[i]);
  }

  void fold(core::Checkpoint&) override {}

  void restore_record(io::DataReader& d, core::Recovery&) override {
    nreads_ = d.read_i32();
    if (nreads_ < 0 || nreads_ > kMaxVars)
      throw CorruptionError("SEEntry read-set count out of range");
    for (std::int32_t i = 0; i < nreads_; ++i) reads_[i] = d.read_i32();
    nwrites_ = d.read_i32();
    if (nwrites_ < 0 || nwrites_ > kMaxVars)
      throw CorruptionError("SEEntry write-set count out of range");
    for (std::int32_t i = 0; i < nwrites_; ++i) writes_[i] = d.read_i32();
  }

 private:
  friend struct AnalysisShapes;

  std::int32_t nreads_ = 0;
  std::int32_t reads_[kMaxVars] = {};
  std::int32_t nwrites_ = 0;
  std::int32_t writes_[kMaxVars] = {};
};

/// Single-byte annotation leaf shared by the BT and ET structures
/// (paper: "binding-time analysis ... record[s] only a single annotation").
template <TypeId kId>
class AnnotationLeaf final : public core::WithCheckpointInfo {
 public:
  static constexpr TypeId kTypeId = kId;
  static const char* const kTypeName;
  /// Witness position of this leaf (only the BT/ET instantiations exist).
  static constexpr AttrField kField =
      kId == 205 ? AttrField::kBt : AttrField::kEt;

  AnnotationLeaf() = default;
  AnnotationLeaf(core::RestoreTag, ObjectId id) : WithCheckpointInfo(id) {}

  [[nodiscard]] std::uint8_t annotation() const noexcept { return value_; }

  void set_annotation(std::uint8_t value) noexcept {
    if (value_ == value) return;
    value_ = value;
    info_.set_modified();
    witness_write(kField);
  }

  [[nodiscard]] TypeId type_id() const noexcept override { return kTypeId; }
  void record(io::DataWriter& d) const override { d.write_u8(value_); }
  void fold(core::Checkpoint&) override {}
  void restore_record(io::DataReader& d, core::Recovery&) override {
    value_ = d.read_u8();
  }

 private:
  friend struct AnalysisShapes;

  std::uint8_t value_ = kStatic;
};

using BT = AnnotationLeaf<205>;
using ET = AnnotationLeaf<206>;

/// Entry wrapper holding one annotation leaf (the paper's BTEntry/ETEntry
/// indirection, Fig. 4: the Entry carries the id, the leaf the value).
template <TypeId kId, class Leaf>
class LeafEntry final : public core::WithCheckpointInfo {
 public:
  static constexpr TypeId kTypeId = kId;
  static const char* const kTypeName;
  /// Witness position of this entry (only the BT/ET instantiations exist).
  static constexpr AttrField kField =
      kId == 203 ? AttrField::kBtEntry : AttrField::kEtEntry;

  explicit LeafEntry(Leaf* leaf = nullptr) : leaf_(leaf) {}
  LeafEntry(core::RestoreTag, ObjectId id) : WithCheckpointInfo(id) {}

  [[nodiscard]] Leaf* leaf() const noexcept { return leaf_; }
  void set_leaf(Leaf* leaf) noexcept {
    leaf_ = leaf;
    info_.set_modified();
    witness_write(kField);
  }

  [[nodiscard]] TypeId type_id() const noexcept override { return kTypeId; }

  void record(io::DataWriter& d) const override {
    core::write_child_id(d, leaf_);
  }
  void fold(core::Checkpoint& c) override {
    if (leaf_ != nullptr) c.checkpoint(*leaf_);
  }
  void restore_record(io::DataReader& d, core::Recovery& r) override {
    r.link(d, leaf_);
  }

 private:
  friend struct AnalysisShapes;

  Leaf* leaf_ = nullptr;
};

using BTEntry = LeafEntry<203, BT>;
using ETEntry = LeafEntry<204, ET>;

/// Per-statement annotation record (paper Fig. 4).
class Attributes final : public core::WithCheckpointInfo {
 public:
  static constexpr TypeId kTypeId = 201;
  static constexpr const char* kTypeName = "analysis.Attributes";

  Attributes() = default;
  Attributes(SEEntry* se, BTEntry* bt, ETEntry* et)
      : se_(se), bt_(bt), et_(et) {}
  Attributes(core::RestoreTag, ObjectId id) : WithCheckpointInfo(id) {}

  [[nodiscard]] SEEntry* se() const noexcept { return se_; }
  [[nodiscard]] BTEntry* bt() const noexcept { return bt_; }
  [[nodiscard]] ETEntry* et() const noexcept { return et_; }

  [[nodiscard]] TypeId type_id() const noexcept override { return kTypeId; }

  void record(io::DataWriter& d) const override {
    core::write_child_id(d, se_);
    core::write_child_id(d, bt_);
    core::write_child_id(d, et_);
  }

  void fold(core::Checkpoint& c) override {
    if (se_ != nullptr) c.checkpoint(*se_);
    if (bt_ != nullptr) c.checkpoint(*bt_);
    if (et_ != nullptr) c.checkpoint(*et_);
  }

  void restore_record(io::DataReader& d, core::Recovery& r) override {
    r.link(d, se_);
    r.link(d, bt_);
    r.link(d, et_);
  }

 private:
  friend struct AnalysisShapes;

  SEEntry* se_ = nullptr;
  BTEntry* bt_ = nullptr;
  ETEntry* et_ = nullptr;
};

/// Register the annotation classes with a recovery registry.
void register_types(core::TypeRegistry& registry);

}  // namespace ickpt::analysis
