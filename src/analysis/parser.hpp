// Recursive-descent parser for the simplified-C subset.
//
// Grammar (see tests/analysis_parser_test.cpp for examples):
//
//   program     := (global_decl | function)*
//   global_decl := 'int' ident ('[' intlit ']')? ('=' intlit)? ';'
//   function    := 'int' ident '(' ('int' ident (',' 'int' ident)*)? ')' block
//   block       := '{' stmt* '}'
//   stmt        := 'int' ident ('=' expr)? ';'
//               | ident '=' expr ';' | ident '[' expr ']' '=' expr ';'
//               | 'if' '(' expr ')' block ('else' block)?
//               | 'while' '(' expr ')' block
//               | 'for' '(' assign ';' expr ';' assign ')' block
//               | 'return' expr ';' | expr ';'
//   expr        := C-style precedence over || && == != < <= > >= + - * / % ! -
//   primary     := intlit | ident | ident '[' expr ']' | ident '(' args ')'
//               | '(' expr ')'
//
// Name resolution happens during the parse (block-scoped, shadowing allowed);
// calls to functions defined later are patched in a final pass.
#pragma once

#include <memory>

#include "analysis/ast.hpp"

namespace ickpt::analysis {

/// Parse a whole program. Throws ParseError with a line number on rejection.
std::unique_ptr<Program> parse_program(std::string_view source);

}  // namespace ickpt::analysis
