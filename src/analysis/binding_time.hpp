// Binding-time analysis: classify every statement as static (evaluable from
// the specializer's inputs alone) or dynamic (paper §4.1: "Binding-time
// analysis identifies expressions that can be evaluated using only the
// information available to the specializer").
//
// Monotone framework over the two-point lattice Static < Dynamic:
//   * the user divides the *globals* into static and dynamic;
//   * binding times flow through assignments, parameters (join over call
//     sites) and returns, and through control context (an assignment under a
//     dynamic branch makes its target dynamic);
//   * iterate() performs whole-program passes until nothing changes — each
//     pass is one checkpointed iteration of the phase.
#pragma once

#include <string>
#include <vector>

#include "analysis/ast.hpp"
#include "analysis/write_witness.hpp"

namespace ickpt::analysis {

struct BtaConfig {
  /// Names of globals whose values are unknown at specialization time.
  std::vector<std::string> dynamic_globals;
};

class BindingTimeAnalysis {
 public:
  BindingTimeAnalysis(const Program& program, const BtaConfig& config);

  /// Declared Attributes write footprint of the binding-time phase: the
  /// engine's BTA loop stores only through the BT leaf's set_annotation.
  [[nodiscard]] static WriteManifest write_manifest() noexcept;

  /// One whole-program pass. Returns true when any binding time changed.
  ///
  /// Jacobi-style: every read within a pass sees the previous pass's
  /// solution, so binding times propagate one assignment/call level per
  /// iteration — matching the multi-iteration convergence the paper
  /// checkpoints (nine BTA passes on its 750-line input).
  bool iterate();

  /// Binding time of a symbol / statement under the current solution
  /// (kStatic or kDynamic annotation values from attributes.hpp).
  [[nodiscard]] std::uint8_t symbol_bt(int symbol) const {
    return bt_[static_cast<std::size_t>(symbol)];
  }
  [[nodiscard]] std::uint8_t statement_bt(int stmt_index) const {
    return stmt_bt_[static_cast<std::size_t>(stmt_index)];
  }

 private:
  std::uint8_t expr_bt(const Expr& expr);
  void visit_stmt(const Stmt& stmt, std::uint8_t ctx);
  void join_symbol(int symbol, std::uint8_t value);

  const Program* program_;
  std::vector<std::uint8_t> bt_;        // per symbol (being written this pass)
  std::vector<std::uint8_t> prev_bt_;   // per symbol (read side of the pass)
  std::vector<std::uint8_t> ret_bt_;    // per function (written this pass)
  std::vector<std::uint8_t> prev_ret_;  // per function (read side)
  std::vector<std::uint8_t> stmt_bt_;   // per statement index
  std::uint8_t pending_return_ = 0;     // kStatic; joined per function pass
  bool changed_ = false;
};

}  // namespace ickpt::analysis
