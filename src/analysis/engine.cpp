#include "analysis/engine.hpp"

#include "common/error.hpp"

namespace ickpt::analysis {

WriteManifest AnalysisEngine::build_manifest() noexcept {
  return {"build", FieldSet::all()};
}

AnalysisEngine::AnalysisEngine(Program& program, core::Heap& heap)
    : program_(&program) {
  attrs_.reserve(program.statements.size());
  for (Stmt* stmt : program.statements) {
    auto* se = heap.make<SEEntry>();
    auto* bt_leaf = heap.make<BT>();
    auto* bt = heap.make<BTEntry>(bt_leaf);
    auto* et_leaf = heap.make<ET>();
    auto* et = heap.make<ETEntry>(et_leaf);
    auto* attrs = heap.make<Attributes>(se, bt, et);
    stmt->attrs = attrs;
    attrs_.push_back(attrs);
    attr_bases_.push_back(attrs);
    attr_ptrs_.push_back(attrs);
    // Construction stores every position of the tree; the setters only see
    // later re-stores, so the build footprint is reported here.
    for (AttrField field :
         {AttrField::kAttr, AttrField::kSe, AttrField::kBtEntry,
          AttrField::kBt, AttrField::kEtEntry, AttrField::kEt})
      witness_write(field);
  }
}

void AnalysisEngine::reset_flags() noexcept {
  for (Attributes* attrs : attrs_) {
    attrs->info().reset_modified();
    attrs->se()->info().reset_modified();
    attrs->bt()->info().reset_modified();
    attrs->bt()->leaf()->info().reset_modified();
    attrs->et()->info().reset_modified();
    attrs->et()->leaf()->info().reset_modified();
  }
}

std::vector<bool> AnalysisEngine::save_flags() const {
  std::vector<bool> flags;
  flags.reserve(attrs_.size() * 6);
  for (const Attributes* attrs : attrs_) {
    flags.push_back(attrs->info().modified());
    flags.push_back(attrs->se()->info().modified());
    flags.push_back(attrs->bt()->info().modified());
    flags.push_back(attrs->bt()->leaf()->info().modified());
    flags.push_back(attrs->et()->info().modified());
    flags.push_back(attrs->et()->leaf()->info().modified());
  }
  return flags;
}

void AnalysisEngine::restore_flags(const std::vector<bool>& flags) {
  if (flags.size() != attrs_.size() * 6)
    throw AnalysisError("restore_flags: snapshot size mismatch");
  std::size_t i = 0;
  auto apply = [&](core::CheckpointInfo& info) {
    if (flags[i++])
      info.set_modified();
    else
      info.reset_modified();
  };
  for (Attributes* attrs : attrs_) {
    apply(attrs->info());
    apply(attrs->se()->info());
    apply(attrs->bt()->info());
    apply(attrs->bt()->leaf()->info());
    apply(attrs->et()->info());
    apply(attrs->et()->leaf()->info());
  }
}

int AnalysisEngine::run_side_effect(const IterationHook& hook) {
  SideEffectAnalysis sea(*program_);
  int iteration = 0;
  bool changed = true;
  while (changed) {
    changed = sea.iterate();
    ++iteration;
    VarSet reads;
    VarSet writes;
    for (Stmt* stmt : program_->statements) {
      sea.statement_effect(*stmt, reads, writes);
      stmt->attrs->se()->set_sets(reads, writes);
    }
    if (hook) hook(iteration);
  }
  return iteration;
}

int AnalysisEngine::run_binding_time(const BtaConfig& config,
                                     const IterationHook& hook) {
  bta_ = std::make_unique<BindingTimeAnalysis>(*program_, config);
  int iteration = 0;
  bool changed = true;
  while (changed) {
    changed = bta_->iterate();
    ++iteration;
    for (Stmt* stmt : program_->statements)
      stmt->attrs->bt()->leaf()->set_annotation(
          bta_->statement_bt(stmt->index));
    if (hook) hook(iteration);
  }
  return iteration;
}

int AnalysisEngine::run_eval_time(const IterationHook& hook) {
  if (bta_ == nullptr)
    throw AnalysisError("run_eval_time requires run_binding_time first");
  EvalTimeAnalysis eta(*program_, *bta_);
  int iteration = 0;
  bool changed = true;
  while (changed) {
    changed = eta.iterate();
    ++iteration;
    for (Stmt* stmt : program_->statements)
      stmt->attrs->et()->leaf()->set_annotation(
          eta.statement_et(stmt->index));
    if (hook) hook(iteration);
  }
  return iteration;
}

}  // namespace ickpt::analysis
