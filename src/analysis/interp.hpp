// Reference interpreter for the simplified-C subset.
//
// Exists to validate the static analyses dynamically (tests only — nothing
// in the checkpointing path depends on it):
//   * every global read/write observed during execution must be contained
//     in the side-effect analysis' per-statement sets (SEA is a sound
//     may-analysis);
//   * a global whose final value changes when a BTA-dynamic input changes
//     must itself be classified dynamic by BTA.
//
// Semantics: 32-bit wrapping integer arithmetic; division/modulo by zero
// and out-of-bounds indexing abort with AnalysisError; a step budget guards
// against non-terminating inputs. Execution is deterministic.
#pragma once

#include <unordered_map>
#include <vector>

#include "analysis/ast.hpp"
#include "analysis/side_effect.hpp"

namespace ickpt::analysis {

struct InterpOptions {
  std::uint64_t max_steps = 200'000'000;
  /// Record per-statement global read/write sets (costs a stack walk per
  /// global access; enable for analysis-validation tests).
  bool track_effects = false;
};

struct InterpResult {
  std::int32_t exit_value = 0;
  std::uint64_t steps = 0;
};

class Interpreter {
 public:
  explicit Interpreter(const Program& program, InterpOptions opts = {});

  /// Execute `entry` (default main, no arguments). Can be called once.
  InterpResult run(const std::string& entry = "main");

  /// Evaluate one function call against the current global state (used by
  /// the residualizer to fold calls to pure-static functions). Unlike
  /// run(), may be invoked repeatedly; the caller is responsible for only
  /// folding calls whose effects are provably empty.
  std::int32_t call_function(int function_index,
                             const std::vector<std::int32_t>& args);

  /// Override a global scalar's initial value before run() (e.g. vary the
  /// dynamic `seed` input).
  void set_global(const std::string& name, std::int32_t value);

  [[nodiscard]] std::int32_t global_value(int symbol) const;
  [[nodiscard]] const std::vector<std::int32_t>& global_array(int symbol) const;

  /// Observed effects (valid after run() with track_effects).
  [[nodiscard]] const VarSet& observed_reads(int stmt_index) const;
  [[nodiscard]] const VarSet& observed_writes(int stmt_index) const;

 private:
  struct Frame {
    std::unordered_map<int, std::int32_t> locals;  // symbol id -> value
  };

  std::int32_t eval(const Expr& expr, Frame& frame);
  /// Returns true when a `return` has fired; the value lands in ret_.
  bool exec(const Stmt& stmt, Frame& frame);
  bool exec_body(const std::vector<std::unique_ptr<Stmt>>& body, Frame& frame);
  std::int32_t call(int function_index, const std::vector<std::int32_t>& args);
  void tick();
  void note_read(int symbol);
  void note_write(int symbol);
  std::int32_t& scalar_slot(int symbol, Frame& frame);

  const Program* program_;
  InterpOptions opts_;
  std::vector<std::int32_t> global_scalars_;          // by symbol id
  std::vector<std::vector<std::int32_t>> global_arrays_;  // by symbol id
  std::vector<VarSet> reads_;
  std::vector<VarSet> writes_;
  std::vector<int> stmt_stack_;  // active statement indices (incl. callers)
  std::int32_t ret_ = 0;
  std::uint64_t steps_ = 0;
  int call_depth_ = 0;
  bool ran_ = false;
};

}  // namespace ickpt::analysis
