#include "analysis/residualize.hpp"

#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "analysis/interp.hpp"
#include "analysis/side_effect.hpp"
#include "common/error.hpp"

namespace ickpt::analysis {

namespace {

class Residualizer {
 public:
  Residualizer(const Program& program, const ResidualizeOptions& opts)
      : source_(&program), opts_(opts), sea_(program) {
    while (sea_.iterate()) {
    }
    collect_written();
    collect_const_globals();
  }

  ResidualProgram run() {
    ResidualProgram result;
    result.program = std::make_unique<Program>();
    out_ = result.program.get();
    out_->symbols = source_->symbols;  // ids stay valid across the rewrite
    out_->globals = source_->globals;
    stats_.statements_in = source_->statements.size();

    for (const Function& function : source_->functions) {
      Function residual;
      residual.name = function.name;
      residual.params = function.params;
      residual.index = function.index;
      env_.clear();
      collect_local_constants(function);
      emit_body(function.body, residual.body);
      out_->functions.push_back(std::move(residual));
    }
    stats_.statements_out = out_->statements.size();
    result.stats = stats_;
    out_ = nullptr;
    return result;
  }

 private:
  // --- constancy ------------------------------------------------------------

  void note_writes(const Stmt& stmt) {
    if (stmt.kind == StmtKind::kAssign) written_.insert(stmt.symbol);
    if (stmt.init_stmt != nullptr) note_writes(*stmt.init_stmt);
    if (stmt.step_stmt != nullptr) note_writes(*stmt.step_stmt);
    for (const auto& child : stmt.body) note_writes(*child);
    for (const auto& child : stmt.else_body) note_writes(*child);
  }

  void collect_written() {
    for (const Function& function : source_->functions) {
      for (const auto& stmt : function.body) note_writes(*stmt);
      // Parameters receive fresh values per call: never constant.
      for (int param : function.params) written_.insert(param);
    }
  }

  void collect_const_globals() {
    std::unordered_set<int> dynamic;
    for (const std::string& name : opts_.dynamic_globals) {
      int id = source_->find_global(name);
      if (id < 0)
        throw AnalysisError("ResidualizeOptions names unknown global '" +
                            name + "'");
      dynamic.insert(id);
    }
    for (int id : source_->globals) {
      if (written_.count(id) != 0 || dynamic.count(id) != 0) continue;
      const Symbol& symbol = source_->symbols.at(id);
      if (symbol.is_array) {
        const_zero_arrays_.insert(id);  // never written -> all zeros
      } else {
        env_globals_[id] = symbol.init_value;
      }
    }
  }

  /// One forward pass: a local declared with a foldable initializer and
  /// never assigned afterwards is a constant for the whole function.
  void collect_local_constants(const Function& function) {
    for (const auto& stmt : function.body) scan_decls(*stmt);
  }

  void scan_decls(const Stmt& stmt) {
    if (stmt.kind == StmtKind::kDecl && written_.count(stmt.symbol) == 0 &&
        stmt.expr1 != nullptr) {
      if (auto value = fold(*stmt.expr1)) env_[stmt.symbol] = *value;
    }
    for (const auto& child : stmt.body) scan_decls(*child);
    for (const auto& child : stmt.else_body) scan_decls(*child);
  }

  // --- expression folding -----------------------------------------------------

  std::optional<std::int32_t> lookup(int symbol) const {
    if (auto it = env_.find(symbol); it != env_.end()) return it->second;
    if (auto it = env_globals_.find(symbol); it != env_globals_.end())
      return it->second;
    return std::nullopt;
  }

  std::optional<std::int32_t> fold(const Expr& expr) {
    switch (expr.kind) {
      case ExprKind::kIntLit:
        return expr.value;
      case ExprKind::kVar:
        return lookup(expr.symbol);
      case ExprKind::kIndex:
        if (const_zero_arrays_.count(expr.symbol) != 0 &&
            fold(*expr.operands[0]).has_value())
          return 0;
        return std::nullopt;
      case ExprKind::kUnary: {
        auto v = fold(*expr.operands[0]);
        if (!v) return std::nullopt;
        return expr.un_op == UnOp::kNeg
                   ? static_cast<std::int32_t>(
                         -static_cast<std::int64_t>(*v))
                   : (*v == 0 ? 1 : 0);
      }
      case ExprKind::kBinary:
        return fold_binary(expr);
      case ExprKind::kCall:
        return fold_call(expr);
    }
    return std::nullopt;
  }

  std::optional<std::int32_t> fold_binary(const Expr& expr) {
    auto a = fold(*expr.operands[0]);
    // Short-circuit folds even with an unfoldable right side.
    if (expr.bin_op == BinOp::kAnd && a.has_value() && *a == 0) return 0;
    if (expr.bin_op == BinOp::kOr && a.has_value() && *a != 0) return 1;
    auto b = fold(*expr.operands[1]);
    if (!a || !b) return std::nullopt;
    std::int64_t x = *a;
    std::int64_t y = *b;
    switch (expr.bin_op) {
      case BinOp::kAdd: return static_cast<std::int32_t>(x + y);
      case BinOp::kSub: return static_cast<std::int32_t>(x - y);
      case BinOp::kMul: return static_cast<std::int32_t>(x * y);
      case BinOp::kDiv:
        if (y == 0) return std::nullopt;  // leave the fault to run time
        return static_cast<std::int32_t>(x / y);
      case BinOp::kMod:
        if (y == 0) return std::nullopt;
        return static_cast<std::int32_t>(x % y);
      case BinOp::kLt: return x < y ? 1 : 0;
      case BinOp::kLe: return x <= y ? 1 : 0;
      case BinOp::kGt: return x > y ? 1 : 0;
      case BinOp::kGe: return x >= y ? 1 : 0;
      case BinOp::kEq: return x == y ? 1 : 0;
      case BinOp::kNe: return x != y ? 1 : 0;
      case BinOp::kAnd: return (x != 0 && y != 0) ? 1 : 0;
      case BinOp::kOr: return (x != 0 || y != 0) ? 1 : 0;
    }
    return std::nullopt;
  }

  /// A call folds when every argument folds and the callee provably has no
  /// side effects and reads only constant globals — then evaluating it now
  /// (in the reference interpreter) equals evaluating it at run time.
  std::optional<std::int32_t> fold_call(const Expr& expr) {
    const FnSummary& summary = sea_.summary(expr.callee_index);
    if (!summary.writes.empty()) return std::nullopt;
    for (std::int32_t read : summary.reads) {
      if (env_globals_.count(read) == 0 &&
          const_zero_arrays_.count(read) == 0)
        return std::nullopt;
    }
    std::vector<std::int32_t> args;
    args.reserve(expr.operands.size());
    for (const auto& operand : expr.operands) {
      auto v = fold(*operand);
      if (!v) return std::nullopt;
      args.push_back(*v);
    }
    if (interp_ == nullptr) {
      InterpOptions iopts;
      iopts.max_steps = opts_.max_fold_steps;
      interp_ = std::make_unique<Interpreter>(*source_, iopts);
    }
    try {
      return interp_->call_function(expr.callee_index, args);
    } catch (const AnalysisError&) {
      return std::nullopt;  // budget or fault: leave the call residual
    }
  }

  // --- AST rebuilding -----------------------------------------------------------

  std::unique_ptr<Expr> literal(std::int32_t value, int line) {
    auto expr = std::make_unique<Expr>();
    expr->kind = ExprKind::kIntLit;
    expr->value = value;
    expr->line = line;
    return expr;
  }

  /// Clone with constant subexpressions replaced by literals.
  std::unique_ptr<Expr> rebuild(const Expr& expr) {
    if (expr.kind != ExprKind::kIntLit) {
      if (auto value = fold(expr)) {
        ++stats_.expressions_folded;
        if (expr.kind == ExprKind::kCall) ++stats_.calls_folded;
        return literal(*value, expr.line);
      }
    }
    auto clone = std::make_unique<Expr>();
    clone->kind = expr.kind;
    clone->value = expr.value;
    clone->symbol = expr.symbol;
    clone->callee_index = expr.callee_index;
    clone->bin_op = expr.bin_op;
    clone->un_op = expr.un_op;
    clone->line = expr.line;
    for (const auto& operand : expr.operands)
      clone->operands.push_back(rebuild(*operand));
    return clone;
  }

  std::unique_ptr<Stmt> fresh_stmt(const Stmt& original) {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = original.kind;
    stmt->symbol = original.symbol;
    stmt->is_array_target = original.is_array_target;
    stmt->line = original.line;
    stmt->index = static_cast<int>(out_->statements.size());
    out_->statements.push_back(stmt.get());
    return stmt;
  }

  static bool declares_locals(const std::vector<std::unique_ptr<Stmt>>& body) {
    for (const auto& stmt : body) {
      if (stmt->kind == StmtKind::kDecl) return true;
      if (declares_locals(stmt->body) || declares_locals(stmt->else_body))
        return true;
    }
    return false;
  }

  void emit_body(const std::vector<std::unique_ptr<Stmt>>& body,
                 std::vector<std::unique_ptr<Stmt>>& out) {
    for (const auto& stmt : body) emit_stmt(*stmt, out);
  }

  void emit_stmt(const Stmt& stmt, std::vector<std::unique_ptr<Stmt>>& out) {
    switch (stmt.kind) {
      case StmtKind::kDecl: {
        auto clone = fresh_stmt(stmt);
        if (stmt.expr1 != nullptr) clone->expr1 = rebuild(*stmt.expr1);
        out.push_back(std::move(clone));
        return;
      }
      case StmtKind::kAssign: {
        auto clone = fresh_stmt(stmt);
        clone->expr1 = rebuild(*stmt.expr1);
        if (stmt.expr3 != nullptr) clone->expr3 = rebuild(*stmt.expr3);
        out.push_back(std::move(clone));
        return;
      }
      case StmtKind::kIf: {
        if (auto cond = fold(*stmt.expr1)) {
          const auto& taken = *cond != 0 ? stmt.body : stmt.else_body;
          // Splicing hoists the branch's declarations into the enclosing
          // scope; skip the splice when that could collide.
          if (!declares_locals(taken)) {
            ++stats_.branches_resolved;
            emit_body(taken, out);
            return;
          }
        }
        auto clone = fresh_stmt(stmt);
        clone->expr1 = rebuild(*stmt.expr1);
        emit_body(stmt.body, clone->body);
        emit_body(stmt.else_body, clone->else_body);
        out.push_back(std::move(clone));
        return;
      }
      case StmtKind::kWhile: {
        if (auto cond = fold(*stmt.expr1); cond.has_value() && *cond == 0) {
          ++stats_.loops_removed;
          return;
        }
        auto clone = fresh_stmt(stmt);
        clone->expr1 = rebuild(*stmt.expr1);
        emit_body(stmt.body, clone->body);
        out.push_back(std::move(clone));
        return;
      }
      case StmtKind::kFor: {
        auto clone = fresh_stmt(stmt);
        std::vector<std::unique_ptr<Stmt>> clause;
        emit_stmt(*stmt.init_stmt, clause);
        clone->init_stmt = std::move(clause.front());
        clause.clear();
        clone->expr1 = rebuild(*stmt.expr1);
        emit_stmt(*stmt.step_stmt, clause);
        clone->step_stmt = std::move(clause.front());
        emit_body(stmt.body, clone->body);
        out.push_back(std::move(clone));
        return;
      }
      case StmtKind::kReturn:
      case StmtKind::kExpr: {
        auto clone = fresh_stmt(stmt);
        clone->expr1 = rebuild(*stmt.expr1);
        out.push_back(std::move(clone));
        return;
      }
    }
  }

  const Program* source_;
  ResidualizeOptions opts_;
  SideEffectAnalysis sea_;
  Program* out_ = nullptr;
  ResidualizeStats stats_;
  std::unordered_set<int> written_;
  std::unordered_set<int> const_zero_arrays_;
  std::unordered_map<int, std::int32_t> env_globals_;
  std::unordered_map<int, std::int32_t> env_;  // per-function local constants
  std::unique_ptr<Interpreter> interp_;
};

}  // namespace

ResidualProgram residualize(const Program& program,
                            const ResidualizeOptions& opts) {
  Residualizer residualizer(program, opts);
  return residualizer.run();
}

}  // namespace ickpt::analysis
