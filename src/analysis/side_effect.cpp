#include "analysis/side_effect.hpp"

#include <algorithm>

namespace ickpt::analysis {

VarSet varset_union(const VarSet& a, const VarSet& b) {
  VarSet out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

void varset_insert(VarSet& set, std::int32_t id) {
  auto it = std::lower_bound(set.begin(), set.end(), id);
  if (it == set.end() || *it != id) set.insert(it, id);
}

SideEffectAnalysis::SideEffectAnalysis(const Program& program)
    : program_(&program), summaries_(program.functions.size()) {}

WriteManifest SideEffectAnalysis::write_manifest() noexcept {
  return {"run_side_effect", FieldSet{AttrField::kSe}};
}

SideEffectAnalysis SideEffectAnalysis::fixpoint(const Program& program) {
  SideEffectAnalysis effects(program);
  while (effects.iterate()) {
  }
  return effects;
}

bool SideEffectAnalysis::writes_global(int fn, std::int32_t global) const {
  const VarSet& writes = writes_of(fn);
  return std::binary_search(writes.begin(), writes.end(), global);
}

void SideEffectAnalysis::collect_expr(const Expr& expr, VarSet& reads,
                                      VarSet& writes) const {
  switch (expr.kind) {
    case ExprKind::kIntLit:
      break;
    case ExprKind::kVar:
    case ExprKind::kIndex:
      if (program_->symbols.is_global(expr.symbol))
        varset_insert(reads, expr.symbol);
      break;
    case ExprKind::kCall: {
      const FnSummary& callee =
          summaries_[static_cast<std::size_t>(expr.callee_index)];
      reads = varset_union(reads, callee.reads);
      writes = varset_union(writes, callee.writes);
      break;
    }
    case ExprKind::kUnary:
    case ExprKind::kBinary:
      break;
  }
  for (const auto& operand : expr.operands)
    collect_expr(*operand, reads, writes);
}

void SideEffectAnalysis::collect_stmt(const Stmt& stmt, VarSet& reads,
                                      VarSet& writes) const {
  if (stmt.expr1 != nullptr) collect_expr(*stmt.expr1, reads, writes);
  if (stmt.expr3 != nullptr) collect_expr(*stmt.expr3, reads, writes);
  if (stmt.kind == StmtKind::kAssign &&
      program_->symbols.is_global(stmt.symbol))
    varset_insert(writes, stmt.symbol);
  if (stmt.init_stmt != nullptr) collect_stmt(*stmt.init_stmt, reads, writes);
  if (stmt.step_stmt != nullptr) collect_stmt(*stmt.step_stmt, reads, writes);
  for (const auto& child : stmt.body) collect_stmt(*child, reads, writes);
  for (const auto& child : stmt.else_body)
    collect_stmt(*child, reads, writes);
}

bool SideEffectAnalysis::iterate() {
  bool changed = false;
  for (std::size_t fn = 0; fn < program_->functions.size(); ++fn) {
    VarSet reads;
    VarSet writes;
    for (const auto& stmt : program_->functions[fn].body)
      collect_stmt(*stmt, reads, writes);
    FnSummary& summary = summaries_[fn];
    if (reads != summary.reads || writes != summary.writes) {
      summary.reads = std::move(reads);
      summary.writes = std::move(writes);
      changed = true;
    }
  }
  return changed;
}

void SideEffectAnalysis::statement_effect(const Stmt& stmt, VarSet& reads,
                                          VarSet& writes) const {
  reads.clear();
  writes.clear();
  collect_stmt(stmt, reads, writes);
}

}  // namespace ickpt::analysis
