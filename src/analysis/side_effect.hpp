// Side-effect analysis: per-statement sets of global variables read and
// written, computed interprocedurally to a fixpoint over function summaries
// (paper §4.1: "Side-effect analysis determines the set of global variables
// read and written by each program statement").
#pragma once

#include <vector>

#include "analysis/ast.hpp"
#include "analysis/write_witness.hpp"

namespace ickpt::analysis {

/// Sorted, duplicate-free set of global symbol ids.
using VarSet = std::vector<std::int32_t>;

VarSet varset_union(const VarSet& a, const VarSet& b);
void varset_insert(VarSet& set, std::int32_t id);

struct FnSummary {
  VarSet reads;
  VarSet writes;
};

class SideEffectAnalysis {
 public:
  explicit SideEffectAnalysis(const Program& program);

  /// Declared Attributes write footprint of the side-effect phase: the
  /// engine's SEA loop stores only through SEEntry::set_sets.
  [[nodiscard]] static WriteManifest write_manifest() noexcept;

  /// Run the analysis on `program` to its fixpoint and return it — the
  /// query surface the verify passes build on (check_pattern refutes
  /// against it, infer_pattern constructs from it).
  static SideEffectAnalysis fixpoint(const Program& program);

  /// One pass: recompute every function summary from the current summaries.
  /// Returns true when any summary changed (fixpoint not yet reached).
  bool iterate();

  /// Transitive write set of `fn` (its body plus every callee) under the
  /// current summaries — exact at fixpoint.
  [[nodiscard]] const VarSet& writes_of(int fn) const {
    return summary(fn).writes;
  }

  /// True when `fn` may (transitively) write the global `global`.
  [[nodiscard]] bool writes_global(int fn, std::int32_t global) const;

  /// Per-statement effect under the current summaries. Valid between
  /// iterations; transitively includes nested statements and callees.
  void statement_effect(const Stmt& stmt, VarSet& reads, VarSet& writes) const;

  [[nodiscard]] const FnSummary& summary(int fn) const {
    return summaries_.at(static_cast<std::size_t>(fn));
  }

 private:
  void collect_expr(const Expr& expr, VarSet& reads, VarSet& writes) const;
  void collect_stmt(const Stmt& stmt, VarSet& reads, VarSet& writes) const;

  const Program* program_;
  std::vector<FnSummary> summaries_;
};

}  // namespace ickpt::analysis
