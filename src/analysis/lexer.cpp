#include "analysis/lexer.hpp"

#include <cctype>

#include "common/error.hpp"

namespace ickpt::analysis {

const char* token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof: return "<eof>";
    case TokenKind::kIntLit: return "integer";
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kKwInt: return "'int'";
    case TokenKind::kKwIf: return "'if'";
    case TokenKind::kKwElse: return "'else'";
    case TokenKind::kKwWhile: return "'while'";
    case TokenKind::kKwFor: return "'for'";
    case TokenKind::kKwReturn: return "'return'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kSemi: return "';'";
    case TokenKind::kComma: return "','";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kEq: return "'=='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kAndAnd: return "'&&'";
    case TokenKind::kOrOr: return "'||'";
    case TokenKind::kNot: return "'!'";
  }
  return "<bad token kind>";
}

Lexer::Lexer(std::string_view source) : src_(source) {}

char Lexer::peek() const noexcept {
  return pos_ < src_.size() ? src_[pos_] : '\0';
}

char Lexer::peek2() const noexcept {
  return pos_ + 1 < src_.size() ? src_[pos_ + 1] : '\0';
}

char Lexer::advance() noexcept {
  char c = src_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

void Lexer::skip_ws_and_comments() {
  for (;;) {
    char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
    } else if (c == '/' && peek2() == '/') {
      while (peek() != '\n' && peek() != '\0') advance();
    } else if (c == '/' && peek2() == '*') {
      advance();
      advance();
      while (!(peek() == '*' && peek2() == '/')) {
        if (peek() == '\0')
          throw ParseError("unterminated comment at line " +
                           std::to_string(line_));
        advance();
      }
      advance();
      advance();
    } else {
      return;
    }
  }
}

Token Lexer::next() {
  skip_ws_and_comments();
  Token token;
  token.line = line_;
  token.column = column_;
  char c = peek();
  if (c == '\0') {
    token.kind = TokenKind::kEof;
    return token;
  }
  if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
    std::int64_t value = 0;
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0) {
      value = value * 10 + (advance() - '0');
      if (value > INT32_MAX)
        throw ParseError("integer literal overflows int32 at line " +
                         std::to_string(token.line));
    }
    token.kind = TokenKind::kIntLit;
    token.value = static_cast<std::int32_t>(value);
    return token;
  }
  if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
    std::string ident;
    while (std::isalnum(static_cast<unsigned char>(peek())) != 0 ||
           peek() == '_')
      ident.push_back(advance());
    if (ident == "int")
      token.kind = TokenKind::kKwInt;
    else if (ident == "if")
      token.kind = TokenKind::kKwIf;
    else if (ident == "else")
      token.kind = TokenKind::kKwElse;
    else if (ident == "while")
      token.kind = TokenKind::kKwWhile;
    else if (ident == "for")
      token.kind = TokenKind::kKwFor;
    else if (ident == "return")
      token.kind = TokenKind::kKwReturn;
    else {
      token.kind = TokenKind::kIdent;
      token.text = std::move(ident);
    }
    return token;
  }
  advance();
  switch (c) {
    case '(': token.kind = TokenKind::kLParen; return token;
    case ')': token.kind = TokenKind::kRParen; return token;
    case '{': token.kind = TokenKind::kLBrace; return token;
    case '}': token.kind = TokenKind::kRBrace; return token;
    case '[': token.kind = TokenKind::kLBracket; return token;
    case ']': token.kind = TokenKind::kRBracket; return token;
    case ';': token.kind = TokenKind::kSemi; return token;
    case ',': token.kind = TokenKind::kComma; return token;
    case '+': token.kind = TokenKind::kPlus; return token;
    case '-': token.kind = TokenKind::kMinus; return token;
    case '*': token.kind = TokenKind::kStar; return token;
    case '/': token.kind = TokenKind::kSlash; return token;
    case '%': token.kind = TokenKind::kPercent; return token;
    case '=':
      if (peek() == '=') {
        advance();
        token.kind = TokenKind::kEq;
      } else {
        token.kind = TokenKind::kAssign;
      }
      return token;
    case '<':
      if (peek() == '=') {
        advance();
        token.kind = TokenKind::kLe;
      } else {
        token.kind = TokenKind::kLt;
      }
      return token;
    case '>':
      if (peek() == '=') {
        advance();
        token.kind = TokenKind::kGe;
      } else {
        token.kind = TokenKind::kGt;
      }
      return token;
    case '!':
      if (peek() == '=') {
        advance();
        token.kind = TokenKind::kNe;
      } else {
        token.kind = TokenKind::kNot;
      }
      return token;
    case '&':
      if (peek() == '&') {
        advance();
        token.kind = TokenKind::kAndAnd;
        return token;
      }
      break;
    case '|':
      if (peek() == '|') {
        advance();
        token.kind = TokenKind::kOrOr;
        return token;
      }
      break;
    default:
      break;
  }
  throw ParseError("unexpected character '" + std::string(1, c) +
                   "' at line " + std::to_string(token.line));
}

std::vector<Token> Lexer::tokenize() {
  std::vector<Token> tokens;
  for (;;) {
    tokens.push_back(next());
    if (tokens.back().kind == TokenKind::kEof) return tokens;
  }
}

}  // namespace ickpt::analysis
