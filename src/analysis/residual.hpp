// Hand-written specialized checkpointing of an Attributes structure — the
// direct C++ transcription of the paper's residual programs:
//
//   * checkpoint_attr         — Fig. 5, specialization w.r.t. structure:
//     virtual calls replaced by direct (devirtualized) calls and the
//     traversal of the fixed Attributes shape inlined into one routine.
//   * checkpoint_attr_btmodif — Fig. 6, + the binding-time phase's
//     modification pattern: the se and et subtrees disappear entirely.
//   * checkpoint_attr_etmodif — same for the evaluation-time phase.
//
// Output is byte-identical to the generic driver on the same state.
#pragma once

#include <span>

#include "analysis/attributes.hpp"
#include "core/checkpoint_format.hpp"

namespace ickpt::analysis::residual {

namespace detail {

inline void header(io::DataWriter& d, TypeId type, const core::CheckpointInfo& info) {
  d.write_u8(core::kRecordTag);
  d.write_varint(type);
  d.write_varint(info.id());
}

template <class T>
inline void record_if_modified(T& obj, io::DataWriter& d) {
  core::CheckpointInfo& info = obj.info();
  if (info.modified()) {
    header(d, T::kTypeId, info);
    obj.T::record(d);  // qualified: direct call, no dispatch
    info.reset_modified();
  }
}

}  // namespace detail

/// Paper Fig. 5: structure specialization of checkpoint() for Attributes.
inline void checkpoint_attr(Attributes& attr, io::DataWriter& d) {
  detail::record_if_modified(attr, d);
  detail::record_if_modified(*attr.se(), d);  // records both lists
  BTEntry& bt_entry = *attr.bt();
  detail::record_if_modified(bt_entry, d);
  detail::record_if_modified(*bt_entry.leaf(), d);
  ETEntry& et_entry = *attr.et();
  detail::record_if_modified(et_entry, d);
  detail::record_if_modified(*et_entry.leaf(), d);
}

/// Paper Fig. 6: + the binding-time phase's modification pattern.
inline void checkpoint_attr_btmodif(Attributes& attr, io::DataWriter& d) {
  detail::record_if_modified(attr, d);
  BTEntry& bt_entry = *attr.bt();
  detail::record_if_modified(bt_entry, d);
  detail::record_if_modified(*bt_entry.leaf(), d);
}

/// Evaluation-time phase analog of Fig. 6.
inline void checkpoint_attr_etmodif(Attributes& attr, io::DataWriter& d) {
  detail::record_if_modified(attr, d);
  ETEntry& et_entry = *attr.et();
  detail::record_if_modified(et_entry, d);
  detail::record_if_modified(*et_entry.leaf(), d);
}

/// Wrap a per-Attributes residual into a complete checkpoint stream.
template <class PerRoot>
inline void run_residual_checkpoint(io::DataWriter& d, Epoch epoch,
                                    std::span<Attributes* const> roots,
                                    PerRoot&& per_root) {
  d.write_u8(core::kStreamMagic);
  d.write_u8(core::kFormatVersion);
  d.write_u8(static_cast<std::uint8_t>(core::Mode::kIncremental));
  d.write_u64(epoch);
  d.write_varint(roots.size());
  for (const Attributes* attr : roots) d.write_varint(attr->info().id());
  for (Attributes* attr : roots) per_root(*attr, d);
  d.write_u8(core::kEndTag);
}

}  // namespace ickpt::analysis::residual
