#include "analysis/binding_time.hpp"

#include <algorithm>

#include "analysis/attributes.hpp"
#include "common/error.hpp"

namespace ickpt::analysis {

namespace {
std::uint8_t join(std::uint8_t a, std::uint8_t b) {
  return a == kDynamic || b == kDynamic ? kDynamic : kStatic;
}
}  // namespace

WriteManifest BindingTimeAnalysis::write_manifest() noexcept {
  return {"run_binding_time", FieldSet{AttrField::kBt}};
}

BindingTimeAnalysis::BindingTimeAnalysis(const Program& program,
                                         const BtaConfig& config)
    : program_(&program),
      bt_(static_cast<std::size_t>(program.symbols.size()), kStatic),
      ret_bt_(program.functions.size(), kStatic),
      stmt_bt_(program.statements.size(), kStatic) {
  for (const std::string& name : config.dynamic_globals) {
    int id = program.find_global(name);
    if (id < 0)
      throw AnalysisError("BtaConfig names unknown global '" + name + "'");
    bt_[static_cast<std::size_t>(id)] = kDynamic;
  }
}

void BindingTimeAnalysis::join_symbol(int symbol, std::uint8_t value) {
  auto& slot = bt_[static_cast<std::size_t>(symbol)];
  std::uint8_t joined = join(slot, value);
  if (joined != slot) {
    slot = joined;
    changed_ = true;
  }
}

std::uint8_t BindingTimeAnalysis::expr_bt(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kIntLit:
      return kStatic;
    case ExprKind::kVar:
      return prev_bt_[static_cast<std::size_t>(expr.symbol)];
    case ExprKind::kIndex:
      return join(prev_bt_[static_cast<std::size_t>(expr.symbol)],
                  expr_bt(*expr.operands[0]));
    case ExprKind::kUnary:
      return expr_bt(*expr.operands[0]);
    case ExprKind::kBinary:
      return join(expr_bt(*expr.operands[0]), expr_bt(*expr.operands[1]));
    case ExprKind::kCall: {
      const Function& callee =
          program_->functions[static_cast<std::size_t>(expr.callee_index)];
      std::uint8_t args_bt = kStatic;
      for (std::size_t i = 0; i < expr.operands.size(); ++i) {
        std::uint8_t arg = expr_bt(*expr.operands[i]);
        join_symbol(callee.params[i], arg);  // caller -> callee flow
        args_bt = join(args_bt, arg);
      }
      // A call's result is dynamic if the callee returns dynamic; arguments
      // alone don't make it dynamic (their effect flows through params).
      return join(args_bt,
                  prev_ret_[static_cast<std::size_t>(expr.callee_index)]);
    }
  }
  return kDynamic;
}

void BindingTimeAnalysis::visit_stmt(const Stmt& stmt, std::uint8_t ctx) {
  std::uint8_t annotation = ctx;
  switch (stmt.kind) {
    case StmtKind::kDecl: {
      std::uint8_t rhs = stmt.expr1 != nullptr ? expr_bt(*stmt.expr1) : kStatic;
      join_symbol(stmt.symbol, join(rhs, ctx));
      annotation = join(annotation,
                        prev_bt_[static_cast<std::size_t>(stmt.symbol)]);
      annotation = join(annotation, join(rhs, ctx));
      break;
    }
    case StmtKind::kAssign: {
      std::uint8_t rhs = expr_bt(*stmt.expr1);
      if (stmt.expr3 != nullptr) rhs = join(rhs, expr_bt(*stmt.expr3));
      join_symbol(stmt.symbol, join(rhs, ctx));
      annotation = join(annotation,
                        prev_bt_[static_cast<std::size_t>(stmt.symbol)]);
      annotation = join(annotation, join(rhs, ctx));
      break;
    }
    case StmtKind::kIf: {
      std::uint8_t cond = expr_bt(*stmt.expr1);
      annotation = join(annotation, cond);
      std::uint8_t inner = join(ctx, cond);
      for (const auto& child : stmt.body) visit_stmt(*child, inner);
      for (const auto& child : stmt.else_body) visit_stmt(*child, inner);
      break;
    }
    case StmtKind::kWhile: {
      std::uint8_t cond = expr_bt(*stmt.expr1);
      annotation = join(annotation, cond);
      std::uint8_t inner = join(ctx, cond);
      for (const auto& child : stmt.body) visit_stmt(*child, inner);
      break;
    }
    case StmtKind::kFor: {
      visit_stmt(*stmt.init_stmt, ctx);
      std::uint8_t cond = expr_bt(*stmt.expr1);
      annotation = join(annotation, cond);
      std::uint8_t inner = join(ctx, cond);
      visit_stmt(*stmt.step_stmt, inner);
      for (const auto& child : stmt.body) visit_stmt(*child, inner);
      break;
    }
    case StmtKind::kReturn: {
      std::uint8_t value = join(expr_bt(*stmt.expr1), ctx);
      annotation = join(annotation, value);
      // callee -> caller flow handled per enclosing function below.
      pending_return_ = join(pending_return_, value);
      break;
    }
    case StmtKind::kExpr:
      annotation = join(annotation, expr_bt(*stmt.expr1));
      break;
  }
  auto& slot = stmt_bt_[static_cast<std::size_t>(stmt.index)];
  std::uint8_t joined = join(slot, annotation);
  if (joined != slot) {
    slot = joined;
    changed_ = true;
  }
}

bool BindingTimeAnalysis::iterate() {
  changed_ = false;
  // Jacobi snapshot: this pass reads the previous pass's solution.
  prev_bt_ = bt_;
  prev_ret_ = ret_bt_;
  for (std::size_t fn = 0; fn < program_->functions.size(); ++fn) {
    pending_return_ = kStatic;
    for (const auto& stmt : program_->functions[fn].body)
      visit_stmt(*stmt, kStatic);
    std::uint8_t joined = join(ret_bt_[fn], pending_return_);
    if (joined != ret_bt_[fn]) {
      ret_bt_[fn] = joined;
      changed_ = true;
    }
  }
  return changed_;
}

}  // namespace ickpt::analysis
