#include "analysis/attributes.hpp"

namespace ickpt::analysis {

template <>
const char* const AnnotationLeaf<205>::kTypeName = "analysis.BT";
template <>
const char* const AnnotationLeaf<206>::kTypeName = "analysis.ET";
template <>
const char* const LeafEntry<203, BT>::kTypeName = "analysis.BTEntry";
template <>
const char* const LeafEntry<204, ET>::kTypeName = "analysis.ETEntry";

void register_types(core::TypeRegistry& registry) {
  registry.register_type<Attributes>();
  registry.register_type<SEEntry>();
  registry.register_type<BTEntry>();
  registry.register_type<ETEntry>();
  registry.register_type<BT>();
  registry.register_type<ET>();
}

}  // namespace ickpt::analysis
