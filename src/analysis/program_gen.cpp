#include "analysis/program_gen.hpp"

#include <sstream>

namespace ickpt::analysis {

namespace {

/// Point-wise filter over img -> tmp -> img. `body` is an expression over
/// the pixel value `v` (and any globals).
void pointwise(std::ostream& out, const std::string& name,
               const std::string& body) {
  out << "int " << name << "() {\n"
      << "  int x;\n"
      << "  int v;\n"
      << "  for (x = 0; x < npixels; x = x + 1) {\n"
      << "    v = img[x];\n"
      << "    tmp[x] = " << body << ";\n"
      << "  }\n"
      << "  for (x = 0; x < npixels; x = x + 1) {\n"
      << "    img[x] = clamp(tmp[x], 0, maxval);\n"
      << "  }\n"
      << "  return 0;\n"
      << "}\n\n";
}

/// 3x3 convolution with integer kernel weights (row-major) and divisor.
void convolution(std::ostream& out, const std::string& name, const int k[9],
                 int divisor) {
  out << "int " << name << "() {\n"
      << "  int x;\n"
      << "  int y;\n"
      << "  int acc;\n"
      << "  for (y = 1; y < height - 1; y = y + 1) {\n"
      << "    for (x = 1; x < width - 1; x = x + 1) {\n"
      << "      acc = 0;\n";
  const int dx[3] = {-1, 0, 1};
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      int w = k[r * 3 + c];
      if (w == 0) continue;
      out << "      acc = acc + " << w << " * img[idx(x + " << dx[c]
          << ", y + " << dx[r] << ")];\n";
    }
  }
  out << "      tmp[idx(x, y)] = acc / " << divisor << ";\n"
      << "    }\n"
      << "  }\n"
      << "  for (y = 1; y < height - 1; y = y + 1) {\n"
      << "    for (x = 1; x < width - 1; x = x + 1) {\n"
      << "      img[idx(x, y)] = clamp(tmp[idx(x, y)], 0, maxval);\n"
      << "    }\n"
      << "  }\n"
      << "  return 0;\n"
      << "}\n\n";
}

}  // namespace

std::string generate_image_program(int stages, int dim) {
  if (stages < 1) stages = 1;
  if (dim < 4) dim = 4;
  const int npixels = dim * dim;
  std::ostringstream out;

  out << "// Synthetic image-manipulation program (simplified-C subset).\n"
      << "// Generated input for the analysis engine; see program_gen.cpp.\n\n";

  // --- globals -------------------------------------------------------------
  out << "int width = " << dim << ";\n"
      << "int height = " << dim << ";\n"
      << "int npixels = " << npixels << ";\n"
      << "int maxval = 255;\n"
      << "int gain = 3;\n"
      << "int bias = 7;\n"
      << "int threshold = 128;\n"
      << "int levels = 4;\n"
      << "int edge_lo = 32;\n"
      << "int edge_hi = 224;\n"
      << "int img[" << npixels << "];\n"
      << "int tmp[" << npixels << "];\n"
      << "int out_img[" << npixels << "];\n"
      << "int hist[256];\n"
      << "int lut[256];\n"
      << "int seed = 12345;\n"
      << "int checksum = 0;\n\n";

  // --- arithmetic helpers (a call chain several levels deep, so BTA takes
  // --- multiple passes to converge) ----------------------------------------
  out << "int mini(int a, int b) {\n"
      << "  if (a < b) {\n    return a;\n  }\n  return b;\n}\n\n"
      << "int maxi(int a, int b) {\n"
      << "  if (a > b) {\n    return a;\n  }\n  return b;\n}\n\n"
      << "int clamp(int v, int lo, int hi) {\n"
      << "  return maxi(lo, mini(v, hi));\n}\n\n"
      << "int absi(int v) {\n"
      << "  if (v < 0) {\n    return 0 - v;\n  }\n  return v;\n}\n\n"
      << "int idx(int x, int y) {\n"
      << "  return y * width + x;\n}\n\n"
      << "int get_pixel(int x, int y) {\n"
      << "  return img[idx(clamp(x, 0, width - 1), clamp(y, 0, height - 1))];"
      << "\n}\n\n"
      << "int put_tmp(int x, int y, int v) {\n"
      << "  tmp[idx(x, y)] = v;\n  return v;\n}\n\n"
      << "int rand_next() {\n"
      << "  seed = seed * 1103 + 12345;\n"
      << "  seed = seed % 65536;\n"
      << "  if (seed < 0) {\n    seed = seed + 65536;\n  }\n"
      << "  return seed % 256;\n}\n\n"
      << "int lerp(int a, int b, int t) {\n"
      << "  return a + ((b - a) * t) / 256;\n}\n\n";

  // --- point-wise filters ----------------------------------------------------
  pointwise(out, "brightness", "v + bias");
  pointwise(out, "darken", "v - bias");
  pointwise(out, "contrast_scale", "((v - 128) * gain) / 2 + 128");
  pointwise(out, "invert", "maxval - v");
  pointwise(out, "threshold_filter",
            "(v >= threshold) * maxval");
  pointwise(out, "quantize", "(v / (256 / levels)) * (256 / levels)");
  pointwise(out, "gamma_approx", "(v * v) / maxval");
  pointwise(out, "soft_clip", "mini(maxval, (v * 3) / 2)");

  // --- 3x3 convolutions ------------------------------------------------------
  {
    const int blur[9] = {1, 1, 1, 1, 1, 1, 1, 1, 1};
    convolution(out, "blur3", blur, 9);
    const int sharpen[9] = {0, -1, 0, -1, 8, -1, 0, -1, 0};
    convolution(out, "sharpen3", sharpen, 4);
    const int sobelx[9] = {-1, 0, 1, -2, 0, 2, -1, 0, 1};
    convolution(out, "sobel_x", sobelx, 1);
    const int sobely[9] = {-1, -2, -1, 0, 0, 0, 1, 2, 1};
    convolution(out, "sobel_y", sobely, 1);
    const int emboss[9] = {-2, -1, 0, -1, 1, 1, 0, 1, 2};
    convolution(out, "emboss", emboss, 1);
  }

  pointwise(out, "posterize2", "(v / 64) * 64");
  pointwise(out, "gain_up", "(v * (gain + 1)) / gain");
  pointwise(out, "gain_down", "(v * gain) / (gain + 1)");
  pointwise(out, "bias_shift", "v + bias - 3");
  pointwise(out, "clip_low", "maxi(v, edge_lo)");
  pointwise(out, "clip_high", "mini(v, edge_hi)");
  pointwise(out, "stretch", "((v - edge_lo) * maxval) / maxi(1, edge_hi - edge_lo)");
  pointwise(out, "fold_mid", "absi(v - 128) * 2");

  {
    const int laplacian[9] = {0, 1, 0, 1, -4, 1, 0, 1, 0};
    convolution(out, "laplacian", laplacian, 1);
    const int motion[9] = {1, 0, 0, 0, 1, 0, 0, 0, 1};
    convolution(out, "motion_blur", motion, 3);
    const int box_top[9] = {1, 1, 1, 1, 1, 1, 0, 0, 0};
    convolution(out, "box_top", box_top, 6);
    const int box_bottom[9] = {0, 0, 0, 1, 1, 1, 1, 1, 1};
    convolution(out, "box_bottom", box_bottom, 6);
    const int cross[9] = {0, 1, 0, 1, 1, 1, 0, 1, 0};
    convolution(out, "cross_blur", cross, 5);
  }

  // --- neighborhood min/max (rank filters) -----------------------------------
  out << "int min_filter() {\n"
      << "  int x;\n  int y;\n  int m;\n"
      << "  for (y = 1; y < height - 1; y = y + 1) {\n"
      << "    for (x = 1; x < width - 1; x = x + 1) {\n"
      << "      m = get_pixel(x, y);\n"
      << "      m = mini(m, get_pixel(x - 1, y));\n"
      << "      m = mini(m, get_pixel(x + 1, y));\n"
      << "      m = mini(m, get_pixel(x, y - 1));\n"
      << "      m = mini(m, get_pixel(x, y + 1));\n"
      << "      put_tmp(x, y, m);\n"
      << "    }\n"
      << "  }\n"
      << "  for (y = 1; y < height - 1; y = y + 1) {\n"
      << "    for (x = 1; x < width - 1; x = x + 1) {\n"
      << "      img[idx(x, y)] = tmp[idx(x, y)];\n"
      << "    }\n"
      << "  }\n"
      << "  return 0;\n}\n\n";

  out << "int max_filter() {\n"
      << "  int x;\n  int y;\n  int m;\n"
      << "  for (y = 1; y < height - 1; y = y + 1) {\n"
      << "    for (x = 1; x < width - 1; x = x + 1) {\n"
      << "      m = get_pixel(x, y);\n"
      << "      m = maxi(m, get_pixel(x - 1, y));\n"
      << "      m = maxi(m, get_pixel(x + 1, y));\n"
      << "      m = maxi(m, get_pixel(x, y - 1));\n"
      << "      m = maxi(m, get_pixel(x, y + 1));\n"
      << "      put_tmp(x, y, m);\n"
      << "    }\n"
      << "  }\n"
      << "  for (y = 1; y < height - 1; y = y + 1) {\n"
      << "    for (x = 1; x < width - 1; x = x + 1) {\n"
      << "      img[idx(x, y)] = tmp[idx(x, y)];\n"
      << "    }\n"
      << "  }\n"
      << "  return 0;\n}\n\n";

  out << "int gradient_magnitude() {\n"
      << "  int x;\n  int y;\n  int gx;\n  int gy;\n"
      << "  for (y = 1; y < height - 1; y = y + 1) {\n"
      << "    for (x = 1; x < width - 1; x = x + 1) {\n"
      << "      gx = get_pixel(x + 1, y) - get_pixel(x - 1, y);\n"
      << "      gy = get_pixel(x, y + 1) - get_pixel(x, y - 1);\n"
      << "      tmp[idx(x, y)] = absi(gx) + absi(gy);\n"
      << "    }\n"
      << "  }\n"
      << "  for (y = 1; y < height - 1; y = y + 1) {\n"
      << "    for (x = 1; x < width - 1; x = x + 1) {\n"
      << "      out_img[idx(x, y)] = clamp(tmp[idx(x, y)], 0, maxval);\n"
      << "    }\n"
      << "  }\n"
      << "  return 0;\n}\n\n";

  out << "int row_normalize() {\n"
      << "  int x;\n  int y;\n  int lo;\n  int hi;\n"
      << "  for (y = 0; y < height; y = y + 1) {\n"
      << "    lo = maxval;\n"
      << "    hi = 0;\n"
      << "    for (x = 0; x < width; x = x + 1) {\n"
      << "      lo = mini(lo, img[idx(x, y)]);\n"
      << "      hi = maxi(hi, img[idx(x, y)]);\n"
      << "    }\n"
      << "    if (hi > lo) {\n"
      << "      for (x = 0; x < width; x = x + 1) {\n"
      << "        img[idx(x, y)] = ((img[idx(x, y)] - lo) * maxval) / (hi - lo);\n"
      << "      }\n"
      << "    }\n"
      << "  }\n"
      << "  return 0;\n}\n\n";

  out << "int column_sum_profile() {\n"
      << "  int x;\n  int y;\n  int acc;\n"
      << "  for (x = 0; x < width; x = x + 1) {\n"
      << "    acc = 0;\n"
      << "    for (y = 0; y < height; y = y + 1) {\n"
      << "      acc = acc + img[idx(x, y)];\n"
      << "    }\n"
      << "    hist[x % 256] = acc / height;\n"
      << "  }\n"
      << "  return 0;\n}\n\n";

  out << "int dither_ordered() {\n"
      << "  int x;\n  int y;\n  int t;\n"
      << "  for (y = 0; y < height; y = y + 1) {\n"
      << "    for (x = 0; x < width; x = x + 1) {\n"
      << "      t = ((x % 2) * 2 + (y % 2)) * 64;\n"
      << "      if (img[idx(x, y)] > t) {\n"
      << "        img[idx(x, y)] = maxval;\n"
      << "      } else {\n"
      << "        img[idx(x, y)] = 0;\n"
      << "      }\n"
      << "    }\n"
      << "  }\n"
      << "  return 0;\n}\n\n";

  // --- histogram and LUT passes ----------------------------------------------
  out << "int histogram_build() {\n"
      << "  int i;\n"
      << "  for (i = 0; i < 256; i = i + 1) {\n"
      << "    hist[i] = 0;\n"
      << "  }\n"
      << "  for (i = 0; i < npixels; i = i + 1) {\n"
      << "    hist[clamp(img[i], 0, maxval)] = hist[clamp(img[i], 0, maxval)] + 1;\n"
      << "  }\n"
      << "  return 0;\n}\n\n";

  out << "int histogram_equalize_lut() {\n"
      << "  int i;\n"
      << "  int cum;\n"
      << "  cum = 0;\n"
      << "  for (i = 0; i < 256; i = i + 1) {\n"
      << "    cum = cum + hist[i];\n"
      << "    lut[i] = clamp((cum * maxval) / npixels, 0, maxval);\n"
      << "  }\n"
      << "  return 0;\n}\n\n";

  out << "int apply_lut() {\n"
      << "  int i;\n"
      << "  for (i = 0; i < npixels; i = i + 1) {\n"
      << "    img[i] = lut[clamp(img[i], 0, maxval)];\n"
      << "  }\n"
      << "  return 0;\n}\n\n";

  // --- geometric transforms ----------------------------------------------------
  out << "int mirror_horizontal() {\n"
      << "  int x;\n  int y;\n"
      << "  for (y = 0; y < height; y = y + 1) {\n"
      << "    for (x = 0; x < width; x = x + 1) {\n"
      << "      tmp[idx(x, y)] = img[idx(width - 1 - x, y)];\n"
      << "    }\n"
      << "  }\n"
      << "  for (y = 0; y < height; y = y + 1) {\n"
      << "    for (x = 0; x < width; x = x + 1) {\n"
      << "      img[idx(x, y)] = tmp[idx(x, y)];\n"
      << "    }\n"
      << "  }\n"
      << "  return 0;\n}\n\n";

  out << "int mirror_vertical() {\n"
      << "  int x;\n  int y;\n"
      << "  for (y = 0; y < height; y = y + 1) {\n"
      << "    for (x = 0; x < width; x = x + 1) {\n"
      << "      tmp[idx(x, y)] = img[idx(x, height - 1 - y)];\n"
      << "    }\n"
      << "  }\n"
      << "  for (y = 0; y < height; y = y + 1) {\n"
      << "    for (x = 0; x < width; x = x + 1) {\n"
      << "      img[idx(x, y)] = tmp[idx(x, y)];\n"
      << "    }\n"
      << "  }\n"
      << "  return 0;\n}\n\n";

  out << "int rotate180() {\n"
      << "  int i;\n"
      << "  for (i = 0; i < npixels; i = i + 1) {\n"
      << "    tmp[i] = img[npixels - 1 - i];\n"
      << "  }\n"
      << "  for (i = 0; i < npixels; i = i + 1) {\n"
      << "    img[i] = tmp[i];\n"
      << "  }\n"
      << "  return 0;\n}\n\n";

  out << "int downscale_half() {\n"
      << "  int x;\n  int y;\n  int acc;\n"
      << "  for (y = 0; y < height / 2; y = y + 1) {\n"
      << "    for (x = 0; x < width / 2; x = x + 1) {\n"
      << "      acc = get_pixel(2 * x, 2 * y) + get_pixel(2 * x + 1, 2 * y)\n"
      << "          + get_pixel(2 * x, 2 * y + 1)"
      << " + get_pixel(2 * x + 1, 2 * y + 1);\n"
      << "      out_img[idx(x, y)] = acc / 4;\n"
      << "    }\n"
      << "  }\n"
      << "  return 0;\n}\n\n";

  out << "int add_noise() {\n"
      << "  int i;\n  int n;\n"
      << "  for (i = 0; i < npixels; i = i + 1) {\n"
      << "    n = rand_next() / 16;\n"
      << "    img[i] = clamp(img[i] + n - 8, 0, maxval);\n"
      << "  }\n"
      << "  return 0;\n}\n\n";

  out << "int edge_mask() {\n"
      << "  int i;\n  int v;\n"
      << "  for (i = 0; i < npixels; i = i + 1) {\n"
      << "    v = img[i];\n"
      << "    if (v < edge_lo) {\n"
      << "      out_img[i] = 0;\n"
      << "    } else {\n"
      << "      if (v > edge_hi) {\n"
      << "        out_img[i] = maxval;\n"
      << "      } else {\n"
      << "        out_img[i] = v;\n"
      << "      }\n"
      << "    }\n"
      << "  }\n"
      << "  return 0;\n}\n\n";

  out << "int blend_with_out(int t) {\n"
      << "  int i;\n"
      << "  for (i = 0; i < npixels; i = i + 1) {\n"
      << "    img[i] = lerp(img[i], out_img[i], t);\n"
      << "  }\n"
      << "  return 0;\n}\n\n";

  out << "int image_checksum() {\n"
      << "  int i;\n  int sum;\n"
      << "  sum = 0;\n"
      << "  for (i = 0; i < npixels; i = i + 1) {\n"
      << "    sum = (sum + img[i]) % 1000000007;\n"
      << "  }\n"
      << "  checksum = sum;\n"
      << "  return sum;\n}\n\n";

  out << "int init_image() {\n"
      << "  int x;\n  int y;\n"
      << "  for (y = 0; y < height; y = y + 1) {\n"
      << "    for (x = 0; x < width; x = x + 1) {\n"
      << "      img[idx(x, y)] = (x * 255) / maxi(1, width - 1);\n"
      << "    }\n"
      << "  }\n"
      << "  return 0;\n}\n\n";

  // --- per-stage filter variants (scale the program with `stages`) -----------
  for (int s = 2; s <= stages; ++s) {
    const std::string suffix = "_v" + std::to_string(s);
    pointwise(out, "brightness" + suffix,
              "v + bias + " + std::to_string(s));
    pointwise(out, "contrast" + suffix,
              "((v - 128) * (gain + " + std::to_string(s) + ")) / 2 + 128");
    pointwise(out, "quantize" + suffix,
              "(v / " + std::to_string(8 * s) + ") * " +
                  std::to_string(8 * s));
    pointwise(out, "blend_const" + suffix,
              "lerp(v, " + std::to_string((s * 37) % 256) + ", 128)");
    const int ring[9] = {1, 1, 1, 1, s, 1, 1, 1, 1};
    convolution(out, "ring_blur" + suffix, ring, 8 + s);
    const int diag[9] = {s, 0, 0, 0, 1, 0, 0, 0, -s};
    convolution(out, "diag_grad" + suffix, diag, 1);
  }

  // --- driver ------------------------------------------------------------------
  out << "int pipeline_stage(int strength) {\n"
      << "  brightness();\n"
      << "  blur3();\n"
      << "  contrast_scale();\n"
      << "  sharpen3();\n"
      << "  if (strength > 1) {\n"
      << "    sobel_x();\n"
      << "    sobel_y();\n"
      << "    emboss();\n"
      << "  }\n"
      << "  histogram_build();\n"
      << "  histogram_equalize_lut();\n"
      << "  apply_lut();\n"
      << "  return image_checksum();\n}\n\n";

  out << "int main() {\n"
      << "  int stage;\n"
      << "  int total;\n"
      << "  total = 0;\n"
      << "  init_image();\n"
      << "  add_noise();\n";
  for (int s = 0; s < stages; ++s) {
    if (s >= 1) {
      const std::string suffix = "_v" + std::to_string(s + 1);
      out << "  brightness" << suffix << "();\n"
          << "  ring_blur" << suffix << "();\n"
          << "  contrast" << suffix << "();\n"
          << "  diag_grad" << suffix << "();\n"
          << "  quantize" << suffix << "();\n"
          << "  blend_const" << suffix << "();\n";
    }
    out << "  for (stage = 0; stage < 3; stage = stage + 1) {\n"
        << "    total = total + pipeline_stage(stage);\n"
        << "  }\n"
        << "  laplacian();\n"
        << "  motion_blur();\n"
        << "  box_top();\n"
        << "  box_bottom();\n"
        << "  cross_blur();\n"
        << "  min_filter();\n"
        << "  max_filter();\n"
        << "  gradient_magnitude();\n"
        << "  row_normalize();\n"
        << "  column_sum_profile();\n"
        << "  dither_ordered();\n"
        << "  posterize2();\n"
        << "  gain_up();\n"
        << "  gain_down();\n"
        << "  bias_shift();\n"
        << "  clip_low();\n"
        << "  clip_high();\n"
        << "  stretch();\n"
        << "  fold_mid();\n"
        << "  mirror_horizontal();\n"
        << "  quantize();\n"
        << "  gamma_approx();\n"
        << "  mirror_vertical();\n"
        << "  rotate180();\n"
        << "  threshold_filter();\n"
        << "  invert();\n"
        << "  soft_clip();\n"
        << "  darken();\n"
        << "  edge_mask();\n"
        << "  blend_with_out(128);\n"
        << "  downscale_half();\n";
  }
  out << "  return total + image_checksum();\n}\n";

  return out.str();
}

BtaConfig default_bta_config() {
  BtaConfig config;
  config.dynamic_globals = {"img", "seed"};
  return config;
}

}  // namespace ickpt::analysis
