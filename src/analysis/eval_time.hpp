// Evaluation-time analysis: among the statements BTA classified static,
// decide which can actually be *executed* at specialization time — i.e.
// every variable they reference is reliably initialized by other evaluable
// statements (paper §4.1: "Evaluation-time analysis ensures that variables
// referenced by the specialized program are properly initialized").
//
// Monotone fixpoint toward "residual": a statement degrades to residual when
// it is dynamic, reads a variable with a residual definition, or calls a
// function whose return is residual. Converges in fewer passes than BTA
// (paper: 3 vs 9 iterations).
#pragma once

#include <vector>

#include "analysis/ast.hpp"
#include "analysis/binding_time.hpp"

namespace ickpt::analysis {

class EvalTimeAnalysis {
 public:
  /// Declared Attributes write footprint of the evaluation-time phase: the
  /// engine's ETA loop stores only through the ET leaf's set_annotation.
  [[nodiscard]] static WriteManifest write_manifest() noexcept;

  /// `bta` must have reached its fixpoint.
  EvalTimeAnalysis(const Program& program, const BindingTimeAnalysis& bta);

  /// One whole-program pass; true when anything degraded to residual.
  bool iterate();

  /// kEvaluable or kResidual (attributes.hpp constants).
  [[nodiscard]] std::uint8_t statement_et(int stmt_index) const {
    return stmt_et_[static_cast<std::size_t>(stmt_index)];
  }
  [[nodiscard]] std::uint8_t symbol_et(int symbol) const {
    return var_et_[static_cast<std::size_t>(symbol)];
  }

 private:
  bool expr_evaluable(const Expr& expr);
  void visit_stmt(const Stmt& stmt);
  void degrade_symbol(int symbol);
  void scan_returns(const std::vector<std::unique_ptr<Stmt>>& body,
                    bool& ok) const;

  const Program* program_;
  const BindingTimeAnalysis* bta_;
  std::vector<std::uint8_t> var_et_;   // per symbol
  std::vector<std::uint8_t> ret_et_;   // per function
  std::vector<std::uint8_t> stmt_et_;  // per statement index
  bool changed_ = false;
};

}  // namespace ickpt::analysis
