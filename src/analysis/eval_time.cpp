#include "analysis/eval_time.hpp"

#include "analysis/attributes.hpp"

namespace ickpt::analysis {

WriteManifest EvalTimeAnalysis::write_manifest() noexcept {
  return {"run_eval_time", FieldSet{AttrField::kEt}};
}

EvalTimeAnalysis::EvalTimeAnalysis(const Program& program,
                                   const BindingTimeAnalysis& bta)
    : program_(&program), bta_(&bta) {
  var_et_.resize(static_cast<std::size_t>(program.symbols.size()));
  for (int s = 0; s < program.symbols.size(); ++s)
    var_et_[static_cast<std::size_t>(s)] =
        bta.symbol_bt(s) == kStatic ? kEvaluable : kResidual;
  ret_et_.resize(program.functions.size(), kEvaluable);
  stmt_et_.resize(program.statements.size());
  for (const Stmt* stmt : program.statements)
    stmt_et_[static_cast<std::size_t>(stmt->index)] =
        bta.statement_bt(stmt->index) == kStatic ? kEvaluable : kResidual;
}

void EvalTimeAnalysis::degrade_symbol(int symbol) {
  auto& slot = var_et_[static_cast<std::size_t>(symbol)];
  if (slot != kResidual) {
    slot = kResidual;
    changed_ = true;
  }
}

bool EvalTimeAnalysis::expr_evaluable(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kIntLit:
      return true;
    case ExprKind::kVar:
      return var_et_[static_cast<std::size_t>(expr.symbol)] == kEvaluable;
    case ExprKind::kIndex:
      return var_et_[static_cast<std::size_t>(expr.symbol)] == kEvaluable &&
             expr_evaluable(*expr.operands[0]);
    case ExprKind::kUnary:
      return expr_evaluable(*expr.operands[0]);
    case ExprKind::kBinary:
      return expr_evaluable(*expr.operands[0]) &&
             expr_evaluable(*expr.operands[1]);
    case ExprKind::kCall: {
      const Function& callee =
          program_->functions[static_cast<std::size_t>(expr.callee_index)];
      bool ok = ret_et_[static_cast<std::size_t>(expr.callee_index)] ==
                kEvaluable;
      for (std::size_t i = 0; i < expr.operands.size(); ++i) {
        bool arg_ok = expr_evaluable(*expr.operands[i]);
        if (!arg_ok) degrade_symbol(callee.params[i]);
        ok = ok && arg_ok;
      }
      return ok;
    }
  }
  return false;
}

void EvalTimeAnalysis::visit_stmt(const Stmt& stmt) {
  bool evaluable =
      stmt_et_[static_cast<std::size_t>(stmt.index)] == kEvaluable;
  switch (stmt.kind) {
    case StmtKind::kDecl:
    case StmtKind::kAssign: {
      bool rhs_ok =
          stmt.expr1 == nullptr || expr_evaluable(*stmt.expr1);
      if (stmt.expr3 != nullptr) rhs_ok = rhs_ok && expr_evaluable(*stmt.expr3);
      if (!rhs_ok || !evaluable) {
        degrade_symbol(stmt.symbol);
        evaluable = false;
      }
      break;
    }
    case StmtKind::kIf:
    case StmtKind::kWhile: {
      evaluable = evaluable && expr_evaluable(*stmt.expr1);
      for (const auto& child : stmt.body) visit_stmt(*child);
      for (const auto& child : stmt.else_body) visit_stmt(*child);
      break;
    }
    case StmtKind::kFor: {
      visit_stmt(*stmt.init_stmt);
      evaluable = evaluable && expr_evaluable(*stmt.expr1);
      visit_stmt(*stmt.step_stmt);
      for (const auto& child : stmt.body) visit_stmt(*child);
      break;
    }
    case StmtKind::kReturn:
    case StmtKind::kExpr:
      evaluable = evaluable && expr_evaluable(*stmt.expr1);
      break;
  }
  auto& slot = stmt_et_[static_cast<std::size_t>(stmt.index)];
  if (!evaluable && slot != kResidual) {
    slot = kResidual;
    changed_ = true;
  }
}

void EvalTimeAnalysis::scan_returns(
    const std::vector<std::unique_ptr<Stmt>>& body, bool& ok) const {
  for (const auto& stmt : body) {
    if (stmt->kind == StmtKind::kReturn &&
        stmt_et_[static_cast<std::size_t>(stmt->index)] == kResidual)
      ok = false;
    scan_returns(stmt->body, ok);
    scan_returns(stmt->else_body, ok);
  }
}

bool EvalTimeAnalysis::iterate() {
  changed_ = false;
  for (std::size_t fn = 0; fn < program_->functions.size(); ++fn)
    for (const auto& stmt : program_->functions[fn].body) visit_stmt(*stmt);
  // A function whose return statements degraded poisons its callers on the
  // next pass.
  for (std::size_t fn = 0; fn < program_->functions.size(); ++fn) {
    bool ok = true;
    scan_returns(program_->functions[fn].body, ok);
    if (!ok && ret_et_[fn] != kResidual) {
      ret_et_[fn] = kResidual;
      changed_ = true;
    }
  }
  return changed_;
}

}  // namespace ickpt::analysis
