// Tokens of the simplified-C subset analyzed by the engine (paper §4.1:
// "our prototype implementation ... treats a simplified version of C").
#pragma once

#include <cstdint>
#include <string>

namespace ickpt::analysis {

enum class TokenKind : std::uint8_t {
  kEof,
  kIntLit,
  kIdent,
  kKwInt,
  kKwIf,
  kKwElse,
  kKwWhile,
  kKwFor,
  kKwReturn,
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kSemi,
  kComma,
  kAssign,   // =
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,   // ==
  kNe,   // !=
  kAndAnd,
  kOrOr,
  kNot,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;         // identifier spelling
  std::int32_t value = 0;   // integer literal value
  int line = 0;
  int column = 0;
};

const char* token_kind_name(TokenKind kind);

}  // namespace ickpt::analysis
