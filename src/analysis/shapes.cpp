#include "analysis/shapes.hpp"

namespace ickpt::analysis {

AnalysisShapes AnalysisShapes::make() {
  AnalysisShapes shapes;

  {
    SEEntry sample;
    spec::ShapeBuilder<SEEntry> b("analysis.SEEntry", sample);
    // Mirrors SEEntry::record(): nreads, reads[], nwrites, writes[].
    b.i32(&SEEntry::nreads_);
    b.i32_array(&SEEntry::reads_, &SEEntry::nreads_);
    b.i32(&SEEntry::nwrites_);
    b.i32_array(&SEEntry::writes_, &SEEntry::nwrites_);
    shapes.se = b.build();
  }
  {
    BT sample;
    spec::ShapeBuilder<BT> b("analysis.BT", sample);
    b.u8(&BT::value_);
    shapes.bt_leaf = b.build();
  }
  {
    ET sample;
    spec::ShapeBuilder<ET> b("analysis.ET", sample);
    b.u8(&ET::value_);
    shapes.et_leaf = b.build();
  }
  {
    BTEntry sample;
    spec::ShapeBuilder<BTEntry> b("analysis.BTEntry", sample);
    b.child(&BTEntry::leaf_, *shapes.bt_leaf);
    shapes.bt_entry = b.build();
  }
  {
    ETEntry sample;
    spec::ShapeBuilder<ETEntry> b("analysis.ETEntry", sample);
    b.child(&ETEntry::leaf_, *shapes.et_leaf);
    shapes.et_entry = b.build();
  }
  {
    Attributes sample;
    spec::ShapeBuilder<Attributes> b("analysis.Attributes", sample);
    // Mirrors Attributes::record()/fold(): se, bt, et.
    b.child(&Attributes::se_, *shapes.se);
    b.child(&Attributes::bt_, *shapes.bt_entry);
    b.child(&Attributes::et_, *shapes.et_entry);
    shapes.attributes = b.build();
  }

  return shapes;
}

spec::PatternNode make_phase_pattern(Phase phase) {
  using spec::ModStatus;
  using spec::PatternNode;

  auto entry_with_leaf = [](bool active) {
    if (!active) return PatternNode::skipped();
    PatternNode entry = PatternNode::leaf(ModStatus::kMaybeModified);
    entry.children.push_back(PatternNode::leaf(ModStatus::kMaybeModified));
    return entry;
  };

  PatternNode root = PatternNode::leaf(ModStatus::kMaybeModified);
  switch (phase) {
    case Phase::kStructureOnly:
      root.children.push_back(PatternNode::leaf(ModStatus::kMaybeModified));
      root.children.push_back(entry_with_leaf(true));
      root.children.push_back(entry_with_leaf(true));
      break;
    case Phase::kSideEffect:
      root.children.push_back(PatternNode::leaf(ModStatus::kMaybeModified));
      root.children.push_back(entry_with_leaf(false));
      root.children.push_back(entry_with_leaf(false));
      break;
    case Phase::kBindingTime:
      // Paper Fig. 6: attr, btEntry, bt keep their tests; se and et vanish.
      root.children.push_back(PatternNode::skipped());
      root.children.push_back(entry_with_leaf(true));
      root.children.push_back(entry_with_leaf(false));
      break;
    case Phase::kEvalTime:
      root.children.push_back(PatternNode::skipped());
      root.children.push_back(entry_with_leaf(false));
      root.children.push_back(entry_with_leaf(true));
      break;
  }
  return root;
}

}  // namespace ickpt::analysis
