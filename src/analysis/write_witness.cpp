#include "analysis/write_witness.hpp"

namespace ickpt::analysis {

namespace {

struct FieldInfo {
  const char* name;
  const char* global;
  std::size_t path[2];
  std::size_t path_len;
};

/// One row per AttrField, in enum order. The paths follow the child order
/// of AnalysisShapes::attributes (se 0, bt_entry 1, et_entry 2); each
/// entry's single child is its annotation leaf.
constexpr FieldInfo kFields[kAttrFieldCount] = {
    {"attr", "attr", {0, 0}, 0},
    {"se", "se_sets", {0, 0}, 1},
    {"bt_entry", "bt_entry", {1, 0}, 1},
    {"bt", "bt_annot", {1, 0}, 2},
    {"et_entry", "et_entry", {2, 0}, 1},
    {"et", "et_annot", {2, 0}, 2},
};

}  // namespace

const char* attr_field_name(AttrField field) noexcept {
  return kFields[static_cast<std::size_t>(field)].name;
}

const char* attr_field_global(AttrField field) noexcept {
  return kFields[static_cast<std::size_t>(field)].global;
}

std::span<const std::size_t> attr_field_path(AttrField field) noexcept {
  const FieldInfo& info = kFields[static_cast<std::size_t>(field)];
  return {info.path, info.path_len};
}

std::vector<AttrField> FieldSet::fields() const {
  std::vector<AttrField> out;
  for (std::size_t i = 0; i < kAttrFieldCount; ++i) {
    auto field = static_cast<AttrField>(i);
    if (contains(field)) out.push_back(field);
  }
  return out;
}

FieldSet WriteWitness::observed(WitnessPhase phase) const {
  FieldSet set;
  if (phase == WitnessPhase::kNone) return set;
  const auto& row = counts_[static_cast<std::size_t>(phase)];
  for (std::size_t i = 0; i < kAttrFieldCount; ++i)
    if (row[i] > 0) set.insert(static_cast<AttrField>(i));
  return set;
}

std::uint64_t WriteWitness::stores(WitnessPhase phase,
                                   AttrField field) const {
  if (phase == WitnessPhase::kNone) return 0;
  return counts_[static_cast<std::size_t>(phase)]
                [static_cast<std::size_t>(field)];
}

}  // namespace ickpt::analysis
