// Generator for the analysis engine's input: a ~750-line image-manipulation
// program in the simplified-C subset, standing in for the one the paper
// analyzes ("We have analyzed a 750-line image manipulation program").
//
// The program is deterministic and self-contained: global pixel buffers,
// arithmetic helpers, a family of point-wise filters, 3x3 convolutions,
// histogram/LUT passes, and geometric transforms, sequenced by main().
// Pixel data (img/tmp/out_img/seed) is dynamic at specialization time; the
// geometry and filter parameters are static — see default_bta_config().
#pragma once

#include <string>

#include "analysis/binding_time.hpp"

namespace ickpt::analysis {

/// Source text of the image program. `stages` repeats the filter pipeline in
/// main() and adds variant filters; 1 yields ~750 lines. `dim` is the image
/// side length (pixel buffers are dim*dim ints) — interpretation cost scales
/// with it, the analyses do not.
std::string generate_image_program(int stages = 1, int dim = 64);

/// The binding-time division the paper's scenario implies: pixel data is
/// unknown at specialization time, geometry and parameters are known.
BtaConfig default_bta_config();

}  // namespace ickpt::analysis
