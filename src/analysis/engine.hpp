// AnalysisEngine: attach an Attributes structure to every statement and run
// the three analysis phases, invoking a hook after each fixpoint iteration —
// "the end of an iteration is a natural time at which to take a checkpoint"
// (paper §4.1). The hook is where callers checkpoint the Attributes roots.
#pragma once

#include <functional>
#include <span>

#include "analysis/attributes.hpp"
#include "analysis/binding_time.hpp"
#include "analysis/eval_time.hpp"
#include "analysis/side_effect.hpp"

namespace ickpt::analysis {

class AnalysisEngine {
 public:
  /// Declared Attributes write footprint of the build/attach phase: the
  /// constructor allocates and links every position of every tree.
  [[nodiscard]] static WriteManifest build_manifest() noexcept;

  /// Allocates the per-statement Attributes trees into `heap`.
  AnalysisEngine(Program& program, core::Heap& heap);

  /// Called after each iteration's annotations have been written (iteration
  /// numbers start at 1).
  using IterationHook = std::function<void(int iteration)>;

  /// Run a phase to its fixpoint; returns the number of iterations.
  int run_side_effect(const IterationHook& hook = {});
  int run_binding_time(const BtaConfig& config, const IterationHook& hook = {});
  /// Requires run_binding_time() to have completed.
  int run_eval_time(const IterationHook& hook = {});

  [[nodiscard]] Program& program() noexcept { return *program_; }
  [[nodiscard]] std::span<Attributes* const> attributes() const noexcept {
    return attrs_;
  }
  /// The Attributes roots as Checkpointable pointers (generic driver input).
  [[nodiscard]] std::span<core::Checkpointable* const> attr_bases()
      const noexcept {
    return attr_bases_;
  }
  /// The same roots as concrete void pointers (plan executor input).
  [[nodiscard]] std::span<void* const> attr_ptrs() const noexcept {
    return attr_ptrs_;
  }

  /// Clear every modified flag on the annotation graph (as a completed
  /// checkpoint would).
  void reset_flags() noexcept;

  /// Snapshot / restore every modified flag on the annotation graph, for
  /// equivalence tests that run several checkpointers on identical state.
  [[nodiscard]] std::vector<bool> save_flags() const;
  void restore_flags(const std::vector<bool>& flags);

 private:
  Program* program_;
  std::vector<Attributes*> attrs_;
  std::vector<core::Checkpointable*> attr_bases_;
  std::vector<void*> attr_ptrs_;
  std::unique_ptr<BindingTimeAnalysis> bta_;  // kept for the ETA phase
};

}  // namespace ickpt::analysis
