// Residualizer: the specialization step the engine's analyses drive
// (paper §4: the analyses are "the kinds of analyses that are used in
// compilation or automatic program specialization").
//
// Given the side-effect, binding-time, and evaluation-time results, produce
// a *residual program*:
//   * expressions whose inputs are compile-time constants fold to literals
//     (constants = never-written static globals, including their zero-filled
//     arrays; single-assignment locals with foldable initializers; calls to
//     effect-free functions over constant arguments, folded by actually
//     executing them in the reference interpreter);
//   * `if` statements with folded conditions splice in the taken branch;
//   * `while` loops with a folded-false condition disappear.
//
// Conservative by construction: anything not provably constant is emitted
// unchanged, so interp(residual, inputs) == interp(original, inputs) for
// every dynamic input — property-tested in analysis_residualize_test.cpp.
#pragma once

#include <memory>

#include "analysis/ast.hpp"

namespace ickpt::analysis {

struct ResidualizeStats {
  std::size_t expressions_folded = 0;
  std::size_t branches_resolved = 0;
  std::size_t loops_removed = 0;
  std::size_t calls_folded = 0;
  std::size_t statements_in = 0;
  std::size_t statements_out = 0;
};

struct ResidualizeOptions {
  /// The dynamic division (same meaning as BtaConfig::dynamic_globals):
  /// these globals' values are unknown at specialization time and never
  /// fold, even when nothing in the program writes them.
  std::vector<std::string> dynamic_globals;
  /// Step budget for folding calls via the interpreter.
  std::uint64_t max_fold_steps = 1'000'000;
};

struct ResidualProgram {
  std::unique_ptr<Program> program;
  ResidualizeStats stats;
};

/// Specialize `program` with respect to its compile-time constants.
ResidualProgram residualize(const Program& program,
                            const ResidualizeOptions& opts = {});

}  // namespace ickpt::analysis
