// Write-set vocabulary and recording hook for the Attributes structure.
//
// Three artifacts ground the verify layer's phase model in the engine that
// actually runs (AutoCheck-style: identify the checkpointed variables from
// the implementation, not from a parallel description of it):
//
//   * AttrField      — the six checkpointable positions of an Attributes
//                      tree, each with its shape path and the name of the
//                      global standing for it in the generated phase model.
//   * WriteManifest  — the footprint one engine phase *declares*: the set of
//                      AttrFields its stores may dirty. Each phase class
//                      (SideEffectAnalysis, BindingTimeAnalysis,
//                      EvalTimeAnalysis, AnalysisEngine build/attach)
//                      exports its own manifest next to the code it
//                      describes.
//   * WriteWitness   — the footprint a phase is *observed* to have: a
//                      process-wide hook compiled into the annotation
//                      setters that records every actual store (the
//                      compare-and-set setters store only on change, so a
//                      witnessed write is exactly a dirtied flag) with
//                      phase attribution. Off by default; when no witness is
//                      installed the hook is a single relaxed pointer test,
//                      the same discipline as the obs null-registry handles.
//
// verify/extract/ drives the engine over a program_gen corpus with a
// witness installed and proves witness ⊆ manifest per phase, then generates
// the simplified-C phase model from the manifests — so the pattern
// checker's proof transitively speaks about declared-and-witnessed engine
// behaviour instead of a hand-maintained mirror.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

namespace ickpt::analysis {

/// The checkpointable positions of an Attributes tree, in shape-tree
/// preorder (AnalysisShapes::attributes child order: se, bt_entry,
/// et_entry; each entry's child is its annotation leaf).
enum class AttrField : std::uint8_t {
  kAttr = 0,  // the Attributes spine itself
  kSe,        // SEEntry (read/write sets)
  kBtEntry,   // BTEntry wrapper
  kBt,        // BT annotation leaf
  kEtEntry,   // ETEntry wrapper
  kEt,        // ET annotation leaf
};

inline constexpr std::size_t kAttrFieldCount = 6;

/// Short field name ("attr", "se", "bt_entry", ...).
[[nodiscard]] const char* attr_field_name(AttrField field) noexcept;

/// Name of the global standing for the field in the generated phase model
/// ("attr", "se_sets", "bt_entry", "bt_annot", ...).
[[nodiscard]] const char* attr_field_global(AttrField field) noexcept;

/// Shape-tree path of the field under AnalysisShapes::attributes (the empty
/// path is the Attributes root).
[[nodiscard]] std::span<const std::size_t> attr_field_path(
    AttrField field) noexcept;

/// Small set of AttrFields (bitmask over the six positions).
class FieldSet {
 public:
  constexpr FieldSet() = default;
  constexpr FieldSet(std::initializer_list<AttrField> fields) {
    for (AttrField field : fields) insert(field);
  }

  /// Every field, for build-style phases that touch the whole tree.
  [[nodiscard]] static constexpr FieldSet all() {
    FieldSet set;
    set.bits_ = (1u << kAttrFieldCount) - 1u;
    return set;
  }

  constexpr void insert(AttrField field) {
    bits_ |= static_cast<std::uint8_t>(1u << static_cast<unsigned>(field));
  }
  [[nodiscard]] constexpr bool contains(AttrField field) const {
    return (bits_ &
            static_cast<std::uint8_t>(1u << static_cast<unsigned>(field))) !=
           0;
  }
  /// Fields in *this but not in `other`.
  [[nodiscard]] constexpr FieldSet minus(FieldSet other) const {
    FieldSet set;
    set.bits_ = static_cast<std::uint8_t>(bits_ & ~other.bits_);
    return set;
  }
  [[nodiscard]] constexpr bool subset_of(FieldSet other) const {
    return (bits_ & ~other.bits_) == 0;
  }
  [[nodiscard]] constexpr bool empty() const { return bits_ == 0; }
  [[nodiscard]] constexpr std::size_t size() const {
    std::size_t n = 0;
    for (std::size_t i = 0; i < kAttrFieldCount; ++i)
      if ((bits_ & (1u << i)) != 0) ++n;
    return n;
  }
  constexpr bool operator==(const FieldSet&) const = default;

  /// Members in ascending field order.
  [[nodiscard]] std::vector<AttrField> fields() const;

 private:
  std::uint8_t bits_ = 0;
};

/// The write footprint one engine phase declares over an Attributes tree.
/// `phase` doubles as the generated model function's name, so it must be a
/// valid identifier of the simplified-C subset.
struct WriteManifest {
  const char* phase;
  FieldSet fields;
};

/// Phase attribution slots for recorded writes. kNone (no scope active)
/// buckets into the unattributed row, which the extraction checker rejects.
enum class WitnessPhase : std::uint8_t {
  kBuild = 0,
  kSideEffect,
  kBindingTime,
  kEvalTime,
  kNone,
};

inline constexpr std::size_t kWitnessPhaseCount = 4;  // excluding kNone

/// Recorder for actual annotation stores, with phase attribution. Install
/// one while driving the engine; every compare-and-set setter that really
/// changes a value reports its field here. Not thread-safe: extraction
/// drives the engine serially (the engine itself is serial).
class WriteWitness {
 public:
  /// Install `witness` as the process-wide recorder (nullptr to uninstall).
  static void install(WriteWitness* witness) noexcept {
    current_.store(witness, std::memory_order_release);
  }
  [[nodiscard]] static WriteWitness* current() noexcept {
    return current_.load(std::memory_order_relaxed);
  }

  /// RAII phase attribution: stores recorded inside the scope are charged
  /// to `phase`; scopes nest (the inner phase wins, the outer is restored).
  class PhaseScope {
   public:
    PhaseScope(WriteWitness& witness, WitnessPhase phase) noexcept
        : witness_(&witness), previous_(witness.phase_) {
      witness_->phase_ = phase;
    }
    ~PhaseScope() { witness_->phase_ = previous_; }
    PhaseScope(const PhaseScope&) = delete;
    PhaseScope& operator=(const PhaseScope&) = delete;

   private:
    WriteWitness* witness_;
    WitnessPhase previous_;
  };

  void record(AttrField field) noexcept {
    if (phase_ == WitnessPhase::kNone) {
      ++unattributed_;
      return;
    }
    ++counts_[static_cast<std::size_t>(phase_)]
             [static_cast<std::size_t>(field)];
  }

  /// Fields stored at least once under `phase`.
  [[nodiscard]] FieldSet observed(WitnessPhase phase) const;
  /// Stores of `field` recorded under `phase`.
  [[nodiscard]] std::uint64_t stores(WitnessPhase phase,
                                     AttrField field) const;
  /// Stores recorded while no phase scope was active.
  [[nodiscard]] std::uint64_t unattributed() const noexcept {
    return unattributed_;
  }

 private:
  inline static std::atomic<WriteWitness*> current_{nullptr};

  WitnessPhase phase_ = WitnessPhase::kNone;
  std::array<std::array<std::uint64_t, kAttrFieldCount>, kWitnessPhaseCount>
      counts_{};
  std::uint64_t unattributed_ = 0;
};

/// The setter-side hook: one relaxed pointer test when no witness is
/// installed (the zero-cost-when-off discipline of the obs handles).
inline void witness_write(AttrField field) noexcept {
  WriteWitness* witness = WriteWitness::current();
  if (witness != nullptr) witness->record(field);
}

}  // namespace ickpt::analysis
