// Lexer for the simplified-C subset.
#pragma once

#include <string_view>
#include <vector>

#include "analysis/token.hpp"

namespace ickpt::analysis {

class Lexer {
 public:
  explicit Lexer(std::string_view source);

  /// Tokenize the whole input (terminated by an kEof token).
  /// Throws ParseError on an unexpected character.
  std::vector<Token> tokenize();

 private:
  Token next();
  char peek() const noexcept;
  char peek2() const noexcept;
  char advance() noexcept;
  void skip_ws_and_comments();

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace ickpt::analysis
