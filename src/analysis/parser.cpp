#include "analysis/parser.hpp"

#include <unordered_map>

#include "analysis/lexer.hpp"
#include "common/error.hpp"

namespace ickpt::analysis {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  std::unique_ptr<Program> run() {
    program_ = std::make_unique<Program>();
    while (!at(TokenKind::kEof)) parse_item();
    resolve_calls();
    return std::move(program_);
  }

 private:
  // -- token helpers --------------------------------------------------------

  [[nodiscard]] const Token& cur() const { return tokens_[pos_]; }
  [[nodiscard]] bool at(TokenKind kind) const { return cur().kind == kind; }

  [[nodiscard]] bool at2(TokenKind kind) const {
    return pos_ + 1 < tokens_.size() && tokens_[pos_ + 1].kind == kind;
  }

  Token eat() { return tokens_[pos_++]; }

  Token expect(TokenKind kind, const char* context) {
    if (!at(kind))
      throw ParseError(std::string("expected ") + token_kind_name(kind) +
                       " in " + context + ", found " +
                       token_kind_name(cur().kind) + " at line " +
                       std::to_string(cur().line));
    return eat();
  }

  [[noreturn]] void fail(const std::string& what) {
    throw ParseError(what + " at line " + std::to_string(cur().line));
  }

  // -- scopes ---------------------------------------------------------------

  void push_scope() { scopes_.emplace_back(); }
  void pop_scope() { scopes_.pop_back(); }

  int declare(Symbol symbol) {
    auto& scope = scopes_.back();
    if (scope.count(symbol.name) != 0)
      fail("redeclaration of '" + symbol.name + "'");
    std::string name = symbol.name;
    int id = program_->symbols.add(std::move(symbol));
    scope.emplace(std::move(name), id);
    return id;
  }

  [[nodiscard]] int lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) return found->second;
    }
    return -1;
  }

  // -- items ----------------------------------------------------------------

  void parse_item() {
    expect(TokenKind::kKwInt, "top-level declaration");
    Token name = expect(TokenKind::kIdent, "top-level declaration");
    if (at(TokenKind::kLParen)) {
      parse_function(name.text);
    } else {
      parse_global(name.text);
    }
  }

  void parse_global(const std::string& name) {
    Symbol symbol;
    symbol.name = name;
    symbol.scope = SymbolScope::kGlobal;
    if (at(TokenKind::kLBracket)) {
      eat();
      Token size = expect(TokenKind::kIntLit, "array size");
      expect(TokenKind::kRBracket, "array declaration");
      symbol.is_array = true;
      symbol.array_size = size.value;
      if (size.value <= 0) fail("array '" + name + "' has non-positive size");
    }
    if (at(TokenKind::kAssign)) {
      eat();
      if (symbol.is_array) fail("array initializers are not supported");
      bool negative = false;
      if (at(TokenKind::kMinus)) {
        eat();
        negative = true;
      }
      Token init = expect(TokenKind::kIntLit, "global initializer");
      symbol.init_value = negative ? -init.value : init.value;
    }
    expect(TokenKind::kSemi, "global declaration");
    program_->globals.push_back(declare(std::move(symbol)));
  }

  void parse_function(const std::string& name) {
    Function function;
    function.name = name;
    function.index = static_cast<int>(program_->functions.size());
    if (function_names_.count(name) != 0)
      fail("redefinition of function '" + name + "'");
    function_names_.emplace(name, function.index);
    current_function_ = function.index;

    push_scope();
    expect(TokenKind::kLParen, "function definition");
    if (!at(TokenKind::kRParen)) {
      for (;;) {
        expect(TokenKind::kKwInt, "parameter");
        Token param = expect(TokenKind::kIdent, "parameter");
        Symbol symbol;
        symbol.name = param.text;
        symbol.scope = SymbolScope::kParam;
        symbol.function_index = function.index;
        function.params.push_back(declare(std::move(symbol)));
        if (!at(TokenKind::kComma)) break;
        eat();
      }
    }
    expect(TokenKind::kRParen, "function definition");
    function.body = parse_block();
    pop_scope();
    current_function_ = -1;
    program_->functions.push_back(std::move(function));
  }

  // -- statements -----------------------------------------------------------

  std::vector<std::unique_ptr<Stmt>> parse_block() {
    expect(TokenKind::kLBrace, "block");
    push_scope();
    std::vector<std::unique_ptr<Stmt>> stmts;
    while (!at(TokenKind::kRBrace)) stmts.push_back(parse_stmt());
    eat();  // '}'
    pop_scope();
    return stmts;
  }

  std::unique_ptr<Stmt> make_stmt(StmtKind kind, int line) {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = kind;
    stmt->line = line;
    stmt->index = static_cast<int>(program_->statements.size());
    program_->statements.push_back(stmt.get());
    return stmt;
  }

  std::unique_ptr<Stmt> parse_stmt() {
    const int line = cur().line;
    if (at(TokenKind::kKwInt)) {
      eat();
      Token name = expect(TokenKind::kIdent, "local declaration");
      auto stmt = make_stmt(StmtKind::kDecl, line);
      Symbol symbol;
      symbol.name = name.text;
      symbol.scope = SymbolScope::kLocal;
      symbol.function_index = current_function_;
      if (at(TokenKind::kAssign)) {
        eat();
        stmt->expr1 = parse_expr();
      }
      // Declare after the initializer so `int x = x;` is rejected.
      stmt->symbol = declare(std::move(symbol));
      expect(TokenKind::kSemi, "local declaration");
      return stmt;
    }
    if (at(TokenKind::kKwIf)) {
      eat();
      auto stmt = make_stmt(StmtKind::kIf, line);
      expect(TokenKind::kLParen, "if statement");
      stmt->expr1 = parse_expr();
      expect(TokenKind::kRParen, "if statement");
      stmt->body = parse_block();
      if (at(TokenKind::kKwElse)) {
        eat();
        stmt->else_body = parse_block();
      }
      return stmt;
    }
    if (at(TokenKind::kKwWhile)) {
      eat();
      auto stmt = make_stmt(StmtKind::kWhile, line);
      expect(TokenKind::kLParen, "while statement");
      stmt->expr1 = parse_expr();
      expect(TokenKind::kRParen, "while statement");
      stmt->body = parse_block();
      return stmt;
    }
    if (at(TokenKind::kKwFor)) {
      eat();
      auto stmt = make_stmt(StmtKind::kFor, line);
      expect(TokenKind::kLParen, "for statement");
      stmt->init_stmt = parse_assign_clause();
      expect(TokenKind::kSemi, "for statement");
      stmt->expr1 = parse_expr();
      expect(TokenKind::kSemi, "for statement");
      stmt->step_stmt = parse_assign_clause();
      expect(TokenKind::kRParen, "for statement");
      stmt->body = parse_block();
      return stmt;
    }
    if (at(TokenKind::kKwReturn)) {
      eat();
      auto stmt = make_stmt(StmtKind::kReturn, line);
      stmt->expr1 = parse_expr();
      expect(TokenKind::kSemi, "return statement");
      return stmt;
    }
    if (at(TokenKind::kIdent) &&
        (at2(TokenKind::kAssign) || at2(TokenKind::kLBracket))) {
      // Could be an assignment or an indexed read used as a statement; an
      // indexed *assignment* has '=' after the ']' — disambiguate by trying
      // the assignment forms first.
      if (at2(TokenKind::kAssign)) return parse_scalar_assign(line);
      std::size_t saved_pos = pos_;
      std::size_t saved_calls = pending_calls_.size();
      auto stmt = try_parse_array_assign(line);
      if (stmt != nullptr) return stmt;
      // Not an assignment after all: rewind the speculative parse (token
      // position, the statement slot, and any calls seen inside the index).
      pos_ = saved_pos;
      pending_calls_.resize(saved_calls);
      program_->statements.pop_back();
    }
    auto stmt = make_stmt(StmtKind::kExpr, line);
    stmt->expr1 = parse_expr();
    expect(TokenKind::kSemi, "expression statement");
    return stmt;
  }

  std::unique_ptr<Stmt> parse_assign_clause() {
    const int line = cur().line;
    if (!at(TokenKind::kIdent) || !at2(TokenKind::kAssign))
      fail("for-clause must be a scalar assignment");
    return parse_scalar_assign(line, /*eat_semi=*/false);
  }

  std::unique_ptr<Stmt> parse_scalar_assign(int line, bool eat_semi = true) {
    Token name = expect(TokenKind::kIdent, "assignment");
    auto stmt = make_stmt(StmtKind::kAssign, line);
    stmt->symbol = resolve(name);
    if (program_->symbols.at(stmt->symbol).is_array)
      fail("cannot assign whole array '" + name.text + "'");
    expect(TokenKind::kAssign, "assignment");
    stmt->expr1 = parse_expr();
    if (eat_semi) expect(TokenKind::kSemi, "assignment");
    return stmt;
  }

  std::unique_ptr<Stmt> try_parse_array_assign(int line) {
    Token name = eat();  // ident
    auto stmt = make_stmt(StmtKind::kAssign, line);
    stmt->is_array_target = true;
    stmt->symbol = resolve(name);
    eat();  // '['
    stmt->expr3 = parse_expr();
    expect(TokenKind::kRBracket, "array assignment");
    if (!at(TokenKind::kAssign)) return nullptr;  // it was a read
    if (!program_->symbols.at(stmt->symbol).is_array)
      fail("indexed assignment to non-array '" + name.text + "'");
    eat();  // '='
    stmt->expr1 = parse_expr();
    expect(TokenKind::kSemi, "array assignment");
    return stmt;
  }

  // -- expressions ----------------------------------------------------------

  int resolve(const Token& name) {
    int id = lookup(name.text);
    if (id < 0)
      throw ParseError("use of undeclared variable '" + name.text +
                       "' at line " + std::to_string(name.line));
    return id;
  }

  std::unique_ptr<Expr> make_expr(ExprKind kind, int line) {
    auto expr = std::make_unique<Expr>();
    expr->kind = kind;
    expr->line = line;
    return expr;
  }

  std::unique_ptr<Expr> parse_expr() { return parse_or(); }

  std::unique_ptr<Expr> parse_or() {
    auto lhs = parse_and();
    while (at(TokenKind::kOrOr)) {
      int line = eat().line;
      auto node = make_expr(ExprKind::kBinary, line);
      node->bin_op = BinOp::kOr;
      node->operands.push_back(std::move(lhs));
      node->operands.push_back(parse_and());
      lhs = std::move(node);
    }
    return lhs;
  }

  std::unique_ptr<Expr> parse_and() {
    auto lhs = parse_equality();
    while (at(TokenKind::kAndAnd)) {
      int line = eat().line;
      auto node = make_expr(ExprKind::kBinary, line);
      node->bin_op = BinOp::kAnd;
      node->operands.push_back(std::move(lhs));
      node->operands.push_back(parse_equality());
      lhs = std::move(node);
    }
    return lhs;
  }

  std::unique_ptr<Expr> parse_equality() {
    auto lhs = parse_relational();
    while (at(TokenKind::kEq) || at(TokenKind::kNe)) {
      Token op = eat();
      auto node = make_expr(ExprKind::kBinary, op.line);
      node->bin_op = op.kind == TokenKind::kEq ? BinOp::kEq : BinOp::kNe;
      node->operands.push_back(std::move(lhs));
      node->operands.push_back(parse_relational());
      lhs = std::move(node);
    }
    return lhs;
  }

  std::unique_ptr<Expr> parse_relational() {
    auto lhs = parse_additive();
    while (at(TokenKind::kLt) || at(TokenKind::kLe) || at(TokenKind::kGt) ||
           at(TokenKind::kGe)) {
      Token op = eat();
      auto node = make_expr(ExprKind::kBinary, op.line);
      switch (op.kind) {
        case TokenKind::kLt: node->bin_op = BinOp::kLt; break;
        case TokenKind::kLe: node->bin_op = BinOp::kLe; break;
        case TokenKind::kGt: node->bin_op = BinOp::kGt; break;
        default: node->bin_op = BinOp::kGe; break;
      }
      node->operands.push_back(std::move(lhs));
      node->operands.push_back(parse_additive());
      lhs = std::move(node);
    }
    return lhs;
  }

  std::unique_ptr<Expr> parse_additive() {
    auto lhs = parse_multiplicative();
    while (at(TokenKind::kPlus) || at(TokenKind::kMinus)) {
      Token op = eat();
      auto node = make_expr(ExprKind::kBinary, op.line);
      node->bin_op =
          op.kind == TokenKind::kPlus ? BinOp::kAdd : BinOp::kSub;
      node->operands.push_back(std::move(lhs));
      node->operands.push_back(parse_multiplicative());
      lhs = std::move(node);
    }
    return lhs;
  }

  std::unique_ptr<Expr> parse_multiplicative() {
    auto lhs = parse_unary();
    while (at(TokenKind::kStar) || at(TokenKind::kSlash) ||
           at(TokenKind::kPercent)) {
      Token op = eat();
      auto node = make_expr(ExprKind::kBinary, op.line);
      switch (op.kind) {
        case TokenKind::kStar: node->bin_op = BinOp::kMul; break;
        case TokenKind::kSlash: node->bin_op = BinOp::kDiv; break;
        default: node->bin_op = BinOp::kMod; break;
      }
      node->operands.push_back(std::move(lhs));
      node->operands.push_back(parse_unary());
      lhs = std::move(node);
    }
    return lhs;
  }

  std::unique_ptr<Expr> parse_unary() {
    if (at(TokenKind::kMinus) || at(TokenKind::kNot)) {
      Token op = eat();
      auto node = make_expr(ExprKind::kUnary, op.line);
      node->un_op = op.kind == TokenKind::kMinus ? UnOp::kNeg : UnOp::kNot;
      node->operands.push_back(parse_unary());
      return node;
    }
    return parse_primary();
  }

  std::unique_ptr<Expr> parse_primary() {
    if (at(TokenKind::kIntLit)) {
      Token lit = eat();
      auto node = make_expr(ExprKind::kIntLit, lit.line);
      node->value = lit.value;
      return node;
    }
    if (at(TokenKind::kLParen)) {
      eat();
      auto inner = parse_expr();
      expect(TokenKind::kRParen, "parenthesized expression");
      return inner;
    }
    if (at(TokenKind::kIdent)) {
      Token name = eat();
      if (at(TokenKind::kLParen)) {
        eat();
        auto node = make_expr(ExprKind::kCall, name.line);
        if (!at(TokenKind::kRParen)) {
          for (;;) {
            node->operands.push_back(parse_expr());
            if (!at(TokenKind::kComma)) break;
            eat();
          }
        }
        expect(TokenKind::kRParen, "call");
        pending_calls_.push_back({node.get(), name.text, name.line});
        return node;
      }
      if (at(TokenKind::kLBracket)) {
        eat();
        auto node = make_expr(ExprKind::kIndex, name.line);
        node->symbol = resolve(name);
        if (!program_->symbols.at(node->symbol).is_array)
          fail("indexing non-array '" + name.text + "'");
        node->operands.push_back(parse_expr());
        expect(TokenKind::kRBracket, "array index");
        return node;
      }
      auto node = make_expr(ExprKind::kVar, name.line);
      node->symbol = resolve(name);
      if (program_->symbols.at(node->symbol).is_array)
        fail("array '" + name.text + "' used as a scalar");
      return node;
    }
    fail(std::string("unexpected ") + token_kind_name(cur().kind) +
         " in expression");
  }

  void resolve_calls() {
    for (const PendingCall& call : pending_calls_) {
      auto it = function_names_.find(call.name);
      if (it == function_names_.end())
        throw ParseError("call to undefined function '" + call.name +
                         "' at line " + std::to_string(call.line));
      const Function& callee = program_->functions[static_cast<std::size_t>(it->second)];
      if (callee.params.size() != call.expr->operands.size())
        throw ParseError("call to '" + call.name + "' with " +
                         std::to_string(call.expr->operands.size()) +
                         " args (expects " +
                         std::to_string(callee.params.size()) + ") at line " +
                         std::to_string(call.line));
      call.expr->callee_index = it->second;
    }
  }

  struct PendingCall {
    Expr* expr;
    std::string name;
    int line;
  };

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::unique_ptr<Program> program_;
  std::vector<std::unordered_map<std::string, int>> scopes_{1};
  std::unordered_map<std::string, int> function_names_;
  std::vector<PendingCall> pending_calls_;
  int current_function_ = -1;
};

}  // namespace

std::unique_ptr<Program> parse_program(std::string_view source) {
  Lexer lexer(source);
  Parser parser(lexer.tokenize());
  return parser.run();
}

}  // namespace ickpt::analysis
