// Shape descriptors and phase patterns for the Attributes structure
// (paper Fig. 4 and §4.2).
#pragma once

#include <memory>

#include "analysis/attributes.hpp"
#include "spec/pattern.hpp"
#include "spec/shape.hpp"

namespace ickpt::analysis {

struct AnalysisShapes {
  std::unique_ptr<spec::ShapeDescriptor> se;
  std::unique_ptr<spec::ShapeDescriptor> bt_leaf;
  std::unique_ptr<spec::ShapeDescriptor> bt_entry;
  std::unique_ptr<spec::ShapeDescriptor> et_leaf;
  std::unique_ptr<spec::ShapeDescriptor> et_entry;
  std::unique_ptr<spec::ShapeDescriptor> attributes;

  static AnalysisShapes make();
};

/// Which phase a checkpoint plan is specialized for.
enum class Phase {
  /// Structure-only: traversal inlined, everything tested (paper Fig. 5).
  kStructureOnly,
  /// Side-effect phase: only the SE entries may change.
  kSideEffect,
  /// Binding-time phase: only the BT entry/leaf may change (paper Fig. 6).
  kBindingTime,
  /// Evaluation-time phase: only the ET entry/leaf may change.
  kEvalTime,
};

/// The modification pattern of an Attributes tree during `phase`
/// ("each phase only modifies its corresponding field of the Attributes
/// structure", paper §4.2).
spec::PatternNode make_phase_pattern(Phase phase);

}  // namespace ickpt::analysis
