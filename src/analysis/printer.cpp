#include "analysis/printer.hpp"

#include <sstream>

#include "analysis/attributes.hpp"

namespace ickpt::analysis {

namespace {

const char* bin_op_text(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kEq: return "==";
    case BinOp::kNe: return "!=";
    case BinOp::kAnd: return "&&";
    case BinOp::kOr: return "||";
  }
  return "?";
}

class Printer {
 public:
  Printer(const Program& program, const PrintOptions& opts)
      : program_(&program), opts_(&opts) {}

  std::string run() {
    for (int id : program_->globals) {
      const Symbol& symbol = program_->symbols.at(id);
      out_ << "int " << symbol.name;
      if (symbol.is_array) out_ << "[" << symbol.array_size << "]";
      if (!symbol.is_array && symbol.init_value != 0)
        out_ << " = " << symbol.init_value;
      out_ << ";\n";
    }
    if (!program_->globals.empty()) out_ << "\n";
    for (const Function& function : program_->functions) {
      out_ << "int " << function.name << "(";
      for (std::size_t i = 0; i < function.params.size(); ++i) {
        if (i != 0) out_ << ", ";
        out_ << "int " << program_->symbols.at(function.params[i]).name;
      }
      out_ << ") {\n";
      print_body(function.body, 1);
      out_ << "}\n\n";
    }
    return out_.str();
  }

  [[nodiscard]] std::string take() { return out_.str(); }

  void expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit:
        // Negative literals only arise from global initializers, which are
        // printed separately; expression literals are non-negative.
        out_ << e.value;
        break;
      case ExprKind::kVar:
        out_ << program_->symbols.at(e.symbol).name;
        break;
      case ExprKind::kIndex:
        out_ << program_->symbols.at(e.symbol).name << "[";
        expr(*e.operands[0]);
        out_ << "]";
        break;
      case ExprKind::kUnary:
        out_ << (e.un_op == UnOp::kNeg ? "-" : "!") << "(";
        expr(*e.operands[0]);
        out_ << ")";
        break;
      case ExprKind::kBinary:
        out_ << "(";
        expr(*e.operands[0]);
        out_ << " " << bin_op_text(e.bin_op) << " ";
        expr(*e.operands[1]);
        out_ << ")";
        break;
      case ExprKind::kCall: {
        const Function& callee =
            program_->functions[static_cast<std::size_t>(e.callee_index)];
        out_ << callee.name << "(";
        for (std::size_t i = 0; i < e.operands.size(); ++i) {
          if (i != 0) out_ << ", ";
          expr(*e.operands[i]);
        }
        out_ << ")";
        break;
      }
    }
  }

 private:
  void indent(int level) {
    for (int i = 0; i < level; ++i) out_ << "  ";
  }

  void annotation(const Stmt& stmt) {
    if (!opts_->annotate || stmt.attrs == nullptr) {
      out_ << "\n";
      return;
    }
    const Attributes& attrs = *stmt.attrs;
    out_ << "  // bt:"
         << (attrs.bt()->leaf()->annotation() == kStatic ? 'S' : 'D')
         << " et:"
         << (attrs.et()->leaf()->annotation() == kEvaluable ? 'E' : 'R');
    if (!attrs.se()->writes().empty()) {
      out_ << " writes:{";
      bool first = true;
      for (std::int32_t id : attrs.se()->writes()) {
        if (!first) out_ << ",";
        first = false;
        out_ << program_->symbols.at(id).name;
      }
      out_ << "}";
    }
    out_ << "\n";
  }

  /// Print an assignment without its terminating newline/semicolon context
  /// (shared by plain statements and for-clauses).
  void assign_clause(const Stmt& stmt) {
    out_ << program_->symbols.at(stmt.symbol).name;
    if (stmt.is_array_target) {
      out_ << "[";
      expr(*stmt.expr3);
      out_ << "]";
    }
    out_ << " = ";
    expr(*stmt.expr1);
  }

  void print_stmt(const Stmt& stmt, int level) {
    indent(level);
    switch (stmt.kind) {
      case StmtKind::kDecl:
        out_ << "int " << program_->symbols.at(stmt.symbol).name;
        if (stmt.expr1 != nullptr) {
          out_ << " = ";
          expr(*stmt.expr1);
        }
        out_ << ";";
        annotation(stmt);
        break;
      case StmtKind::kAssign:
        assign_clause(stmt);
        out_ << ";";
        annotation(stmt);
        break;
      case StmtKind::kIf:
        out_ << "if (";
        expr(*stmt.expr1);
        out_ << ") {";
        annotation(stmt);
        print_body(stmt.body, level + 1);
        indent(level);
        if (stmt.else_body.empty()) {
          out_ << "}\n";
        } else {
          out_ << "} else {\n";
          print_body(stmt.else_body, level + 1);
          indent(level);
          out_ << "}\n";
        }
        break;
      case StmtKind::kWhile:
        out_ << "while (";
        expr(*stmt.expr1);
        out_ << ") {";
        annotation(stmt);
        print_body(stmt.body, level + 1);
        indent(level);
        out_ << "}\n";
        break;
      case StmtKind::kFor:
        out_ << "for (";
        assign_clause(*stmt.init_stmt);
        out_ << "; ";
        expr(*stmt.expr1);
        out_ << "; ";
        assign_clause(*stmt.step_stmt);
        out_ << ") {";
        annotation(stmt);
        print_body(stmt.body, level + 1);
        indent(level);
        out_ << "}\n";
        break;
      case StmtKind::kReturn:
        out_ << "return ";
        expr(*stmt.expr1);
        out_ << ";";
        annotation(stmt);
        break;
      case StmtKind::kExpr:
        expr(*stmt.expr1);
        out_ << ";";
        annotation(stmt);
        break;
    }
  }

  void print_body(const std::vector<std::unique_ptr<Stmt>>& body, int level) {
    for (const auto& stmt : body) print_stmt(*stmt, level);
  }

  const Program* program_;
  const PrintOptions* opts_;
  std::ostringstream out_;
};

}  // namespace

std::string print_program(const Program& program, PrintOptions opts) {
  return Printer(program, opts).run();
}

std::string print_expr(const Expr& e, const Program& program) {
  PrintOptions opts;
  Printer printer(program, opts);
  printer.expr(e);
  return printer.take();
}

}  // namespace ickpt::analysis
