#include "analysis/interp.hpp"

#include <optional>

#include "common/error.hpp"

namespace ickpt::analysis {

namespace {
constexpr int kMaxCallDepth = 512;

std::int32_t wrap(std::int64_t v) {
  return static_cast<std::int32_t>(static_cast<std::uint64_t>(v));
}
}  // namespace

Interpreter::Interpreter(const Program& program, InterpOptions opts)
    : program_(&program), opts_(opts) {
  const int nsymbols = program.symbols.size();
  global_scalars_.resize(static_cast<std::size_t>(nsymbols), 0);
  global_arrays_.resize(static_cast<std::size_t>(nsymbols));
  for (int id : program.globals) {
    const Symbol& symbol = program.symbols.at(id);
    if (symbol.is_array) {
      global_arrays_[static_cast<std::size_t>(id)].assign(
          static_cast<std::size_t>(symbol.array_size), 0);
    } else {
      global_scalars_[static_cast<std::size_t>(id)] = symbol.init_value;
    }
  }
  if (opts_.track_effects) {
    reads_.resize(program.statements.size());
    writes_.resize(program.statements.size());
  }
}

void Interpreter::set_global(const std::string& name, std::int32_t value) {
  int id = program_->find_global(name);
  if (id < 0 || program_->symbols.at(id).is_array)
    throw AnalysisError("set_global: no scalar global '" + name + "'");
  global_scalars_[static_cast<std::size_t>(id)] = value;
}

std::int32_t Interpreter::global_value(int symbol) const {
  return global_scalars_.at(static_cast<std::size_t>(symbol));
}

const std::vector<std::int32_t>& Interpreter::global_array(int symbol) const {
  return global_arrays_.at(static_cast<std::size_t>(symbol));
}

const VarSet& Interpreter::observed_reads(int stmt_index) const {
  return reads_.at(static_cast<std::size_t>(stmt_index));
}

const VarSet& Interpreter::observed_writes(int stmt_index) const {
  return writes_.at(static_cast<std::size_t>(stmt_index));
}

void Interpreter::tick() {
  if (++steps_ > opts_.max_steps)
    throw AnalysisError("interpreter exceeded its step budget");
}

void Interpreter::note_read(int symbol) {
  if (!opts_.track_effects || !program_->symbols.is_global(symbol)) return;
  for (int stmt : stmt_stack_)
    varset_insert(reads_[static_cast<std::size_t>(stmt)], symbol);
}

void Interpreter::note_write(int symbol) {
  if (!opts_.track_effects || !program_->symbols.is_global(symbol)) return;
  for (int stmt : stmt_stack_)
    varset_insert(writes_[static_cast<std::size_t>(stmt)], symbol);
}

std::int32_t& Interpreter::scalar_slot(int symbol, Frame& frame) {
  if (program_->symbols.is_global(symbol))
    return global_scalars_[static_cast<std::size_t>(symbol)];
  return frame.locals[symbol];  // default-initialized to 0 on first touch
}

std::int32_t Interpreter::eval(const Expr& expr, Frame& frame) {
  tick();
  switch (expr.kind) {
    case ExprKind::kIntLit:
      return expr.value;
    case ExprKind::kVar:
      note_read(expr.symbol);
      return scalar_slot(expr.symbol, frame);
    case ExprKind::kIndex: {
      std::int32_t index = eval(*expr.operands[0], frame);
      note_read(expr.symbol);
      auto& array = global_arrays_[static_cast<std::size_t>(expr.symbol)];
      if (index < 0 || static_cast<std::size_t>(index) >= array.size())
        throw AnalysisError(
            "array index out of bounds at line " + std::to_string(expr.line) +
            " (" + program_->symbols.at(expr.symbol).name + "[" +
            std::to_string(index) + "])");
      return array[static_cast<std::size_t>(index)];
    }
    case ExprKind::kUnary: {
      std::int32_t v = eval(*expr.operands[0], frame);
      return expr.un_op == UnOp::kNeg ? wrap(-static_cast<std::int64_t>(v))
                                      : (v == 0 ? 1 : 0);
    }
    case ExprKind::kBinary: {
      // && and || short-circuit, as in C.
      if (expr.bin_op == BinOp::kAnd) {
        return eval(*expr.operands[0], frame) != 0 &&
                       eval(*expr.operands[1], frame) != 0
                   ? 1
                   : 0;
      }
      if (expr.bin_op == BinOp::kOr) {
        return eval(*expr.operands[0], frame) != 0 ||
                       eval(*expr.operands[1], frame) != 0
                   ? 1
                   : 0;
      }
      std::int64_t a = eval(*expr.operands[0], frame);
      std::int64_t b = eval(*expr.operands[1], frame);
      switch (expr.bin_op) {
        case BinOp::kAdd: return wrap(a + b);
        case BinOp::kSub: return wrap(a - b);
        case BinOp::kMul: return wrap(a * b);
        case BinOp::kDiv:
          if (b == 0)
            throw AnalysisError("division by zero at line " +
                                std::to_string(expr.line));
          return wrap(a / b);
        case BinOp::kMod:
          if (b == 0)
            throw AnalysisError("modulo by zero at line " +
                                std::to_string(expr.line));
          return wrap(a % b);
        case BinOp::kLt: return a < b ? 1 : 0;
        case BinOp::kLe: return a <= b ? 1 : 0;
        case BinOp::kGt: return a > b ? 1 : 0;
        case BinOp::kGe: return a >= b ? 1 : 0;
        case BinOp::kEq: return a == b ? 1 : 0;
        case BinOp::kNe: return a != b ? 1 : 0;
        default:
          throw AnalysisError("unreachable binary operator");
      }
    }
    case ExprKind::kCall: {
      std::vector<std::int32_t> args;
      args.reserve(expr.operands.size());
      for (const auto& operand : expr.operands)
        args.push_back(eval(*operand, frame));
      return call(expr.callee_index, args);
    }
  }
  throw AnalysisError("unreachable expression kind");
}

std::int32_t Interpreter::call(int function_index,
                               const std::vector<std::int32_t>& args) {
  if (++call_depth_ > kMaxCallDepth) {
    --call_depth_;
    throw AnalysisError("call depth exceeded (runaway recursion?)");
  }
  const Function& function =
      program_->functions[static_cast<std::size_t>(function_index)];
  Frame frame;
  for (std::size_t i = 0; i < function.params.size(); ++i)
    frame.locals[function.params[i]] = args[i];
  ret_ = 0;
  exec_body(function.body, frame);
  --call_depth_;
  return ret_;
}

bool Interpreter::exec_body(const std::vector<std::unique_ptr<Stmt>>& body,
                            Frame& frame) {
  for (const auto& stmt : body)
    if (exec(*stmt, frame)) return true;
  return false;
}

bool Interpreter::exec(const Stmt& stmt, Frame& frame) {
  tick();
  struct StackGuard {
    std::vector<int>* stack;
    explicit StackGuard(std::vector<int>* s) : stack(s) {}
    ~StackGuard() {
      if (stack != nullptr) stack->pop_back();
    }
  };
  std::optional<StackGuard> guard;
  if (opts_.track_effects) {
    stmt_stack_.push_back(stmt.index);
    guard.emplace(&stmt_stack_);
  }

  switch (stmt.kind) {
    case StmtKind::kDecl: {
      std::int32_t value =
          stmt.expr1 != nullptr ? eval(*stmt.expr1, frame) : 0;
      frame.locals[stmt.symbol] = value;
      return false;
    }
    case StmtKind::kAssign: {
      if (stmt.is_array_target) {
        std::int32_t index = eval(*stmt.expr3, frame);
        std::int32_t value = eval(*stmt.expr1, frame);
        note_write(stmt.symbol);
        auto& array = global_arrays_[static_cast<std::size_t>(stmt.symbol)];
        if (index < 0 || static_cast<std::size_t>(index) >= array.size())
          throw AnalysisError(
              "array store out of bounds at line " +
              std::to_string(stmt.line) + " (" +
              program_->symbols.at(stmt.symbol).name + "[" +
              std::to_string(index) + "])");
        array[static_cast<std::size_t>(index)] = value;
      } else {
        std::int32_t value = eval(*stmt.expr1, frame);
        note_write(stmt.symbol);
        scalar_slot(stmt.symbol, frame) = value;
      }
      return false;
    }
    case StmtKind::kIf:
      if (eval(*stmt.expr1, frame) != 0) return exec_body(stmt.body, frame);
      return exec_body(stmt.else_body, frame);
    case StmtKind::kWhile:
      while (eval(*stmt.expr1, frame) != 0) {
        if (exec_body(stmt.body, frame)) return true;
        tick();
      }
      return false;
    case StmtKind::kFor: {
      if (exec(*stmt.init_stmt, frame)) return true;
      while (eval(*stmt.expr1, frame) != 0) {
        if (exec_body(stmt.body, frame)) return true;
        if (exec(*stmt.step_stmt, frame)) return true;
        tick();
      }
      return false;
    }
    case StmtKind::kReturn:
      ret_ = eval(*stmt.expr1, frame);
      return true;
    case StmtKind::kExpr:
      eval(*stmt.expr1, frame);
      return false;
  }
  throw AnalysisError("unreachable statement kind");
}

std::int32_t Interpreter::call_function(int function_index,
                                        const std::vector<std::int32_t>& args) {
  const Function& function =
      program_->functions.at(static_cast<std::size_t>(function_index));
  if (function.params.size() != args.size())
    throw AnalysisError("call_function: arity mismatch for '" +
                        function.name + "'");
  return call(function_index, args);
}

InterpResult Interpreter::run(const std::string& entry) {
  if (ran_) throw AnalysisError("Interpreter::run called twice");
  ran_ = true;
  int index = program_->find_function(entry);
  if (index < 0)
    throw AnalysisError("no function '" + entry + "' to interpret");
  if (!program_->functions[static_cast<std::size_t>(index)].params.empty())
    throw AnalysisError("entry function must take no parameters");
  InterpResult result;
  result.exit_value = call(index, {});
  result.steps = steps_;
  return result;
}

}  // namespace ickpt::analysis
