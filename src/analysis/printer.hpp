// Pretty printer for the simplified-C AST.
//
// Prints a Program back to parsable source; optionally annotates each
// statement with the binding-time / evaluation-time classifications from
// its Attributes record (the classic specializer view of an analyzed
// program). Round-trip property: parse(print(p)) is structurally identical
// to p — tested in analysis_interp_test.cpp.
#pragma once

#include <string>

#include "analysis/ast.hpp"

namespace ickpt::analysis {

struct PrintOptions {
  /// Append "// bt:S et:E"-style comments from each statement's Attributes
  /// (statements without attached Attributes print unannotated).
  bool annotate = false;
};

std::string print_program(const Program& program, PrintOptions opts = {});

/// Print one expression (useful in diagnostics and tests).
std::string print_expr(const Expr& expr, const Program& program);

}  // namespace ickpt::analysis
