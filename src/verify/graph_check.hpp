// Object-graph shape checker: verify the paper's structural assumption.
//
// Both the generic driver and every specialized plan assume checkpointed
// graphs are acyclic and unshared (paper §2.1; README "Limits"). With
// cycle_guard off — the default, because the guard's set insertions distort
// the benchmarks — a cycle hangs the traversal and a shared subobject is
// recorded once per path to it. This pass walks the live graph (a dry-run,
// cycle-guarded traversal via core::VisitHooks — no bytes written, no flags
// reset) and reports every violation with the id path that reaches it:
//
//   * "cycle"  (kError):   a back edge to an object currently on the
//     traversal stack; an unguarded checkpoint of this graph never
//     terminates.
//   * "shared" (kWarning): a cross edge to an object already visited under
//     another parent; an unguarded checkpoint double-records it (bloat, and
//     divergence from specialized plans), a guarded one is correct.
//
// Run it once after building a structure, or whenever a workload's graph
// topology is not trusted, before disabling the guard or compiling plans.
#pragma once

#include <span>

#include "core/checkpoint.hpp"
#include "verify/diagnostics.hpp"

namespace ickpt::verify {

struct GraphCheckOptions {
  /// Stop adding findings past this many (the walk still completes);
  /// suppressed counts appear in the summary.
  std::size_t max_findings = 64;
};

/// Walk the graph under `roots` and report shape violations.
/// Report::clean() means acyclic (sharing alone is a warning).
Report check_graph(std::span<core::Checkpointable* const> roots,
                   const GraphCheckOptions& options = {});

}  // namespace ickpt::verify
