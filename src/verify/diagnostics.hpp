// Shared diagnostic vocabulary of the verify passes.
//
// Every pass (pattern soundness, object-graph shape, offline stream fsck)
// emits a Report: a flat list of Findings ordered by discovery, each with a
// stable machine-readable code, a severity, and a self-contained message.
// Severity semantics are uniform across passes:
//
//   * kError   — running/recovering with this state can corrupt or lose
//                data (unsound skip, cycle, CRC mismatch, dangling id).
//   * kWarning — recoverable but suspicious; behaviour depends on options
//                (shared subobject, duplicate record, incremental-first
//                chain).
//   * kNote    — correct but wasteful (over-conservative pattern,
//                redundant record): a performance bug, not a safety bug.
//
// A report is clean() iff it carries no errors; warnings and notes never
// fail a gate on their own.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace ickpt::verify {

enum class Severity : std::uint8_t { kNote, kWarning, kError };

[[nodiscard]] const char* severity_name(Severity severity) noexcept;

struct Finding {
  Severity severity = Severity::kError;
  /// Stable slug identifying the check ("unsound-skip", "cycle",
  /// "frame-decode", ...); tests and tooling match on this, not on message
  /// text.
  std::string code;
  /// Self-contained human-readable description.
  std::string message;
  /// Where: a pattern position path ("/1/0") or an object id path
  /// ("7->9->7"), when the pass has one.
  std::string position;
  /// Pattern pass: dense statement index / source line of the refuting
  /// write (-1 when not applicable).
  std::int64_t witness_stmt = -1;
  std::int64_t witness_line = -1;
  /// Fsck pass: stable-storage frame sequence number (-1 when not
  /// applicable).
  std::int64_t frame_seq = -1;
  /// Fsck pass: byte offset within the log file of the frame (or, for
  /// "log-tail", of the first damaged byte); -1 when not applicable.
  std::int64_t byte_offset = -1;
  /// Graph/fsck passes: the offending object id (kNullObjectId when not
  /// applicable).
  ObjectId object_id = kNullObjectId;
};

struct Report {
  /// Which pass produced this report ("pattern", "graph", "fsck").
  std::string pass;
  /// One-line pass-specific statistics, set by the pass.
  std::string summary;
  std::vector<Finding> findings;

  void add(Finding finding) { findings.push_back(std::move(finding)); }

  [[nodiscard]] std::size_t count_severity(Severity severity) const;
  [[nodiscard]] std::size_t errors() const {
    return count_severity(Severity::kError);
  }
  [[nodiscard]] std::size_t warnings() const {
    return count_severity(Severity::kWarning);
  }
  [[nodiscard]] std::size_t notes() const {
    return count_severity(Severity::kNote);
  }

  /// No errors (warnings and notes allowed).
  [[nodiscard]] bool clean() const { return errors() == 0; }

  /// First finding with `code`, or nullptr.
  [[nodiscard]] const Finding* first(std::string_view code) const;
  [[nodiscard]] std::size_t count(std::string_view code) const;

  /// Human-readable multi-line rendering (summary, then one line per
  /// finding).
  [[nodiscard]] std::string to_string() const;
};

}  // namespace ickpt::verify
