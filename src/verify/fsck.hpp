// Offline checkpoint-chain fsck: validate a log file without materializing
// the object graph.
//
// `ickptctl verify` answers "can this log be recovered" by actually
// recovering it — O(live objects) memory and a registry of live classes.
// This pass answers the same question structurally, pulling frames one at a
// time off an io::FrameIterator (O(largest frame) memory — the log is never
// buffered whole) and pushing each through a scan-mode core::Recovery
// (transient per-record instances, O(1) live objects), checking the
// invariants recovery relies on:
//
//   frame level   — magic, CRC over seq/length/payload, sequence-number
//                   monotonicity (a damaged or torn region is "log-tail",
//                   kError, with the byte offset of the first damaged byte;
//                   `ickptctl fsck --repair` truncates there).
//   stream level  — header magic/version/mode, record tags, per-class
//                   payload validation, no trailing bytes, no null object
//                   ids ("frame-decode", kError).
//   chain level   — epochs strictly increasing across frames
//                   ("epoch-order"); the chain begins with a full
//                   checkpoint ("chain-start", kWarning); no object changes
//                   type within a recovery window ("type-change").
//   id closure    — over the final recovery window (the most recent full
//                   checkpoint plus its deltas — exactly what
//                   CheckpointManager::recover replays): every referenced
//                   child id is defined ("dangling-child"), every named
//                   root exists ("missing-root"), and an id recorded twice
//                   within one frame is flagged ("dup-record", kWarning —
//                   the double-record signature of an unguarded shared
//                   subobject).
//   retention     — when a `<log>.retain` manifest declares a policy
//                   compaction's retained set, the log must honor it: an
//                   epoch on the log at or below the declared newest but
//                   absent from the declaration ("retention-undeclared",
//                   kError — a half-applied policy is damage, not
//                   tidiness), a declared epoch with no parseable frame
//                   ("retention-missing", kError), a declared epoch off
//                   the binomial schedule ("retention-policy", kError),
//                   and a declared epoch no undamaged full-checkpoint
//                   window reaches ("retention-unreachable", kError).
//
// Report::clean() (no errors) means replaying the log cannot fail; call it
// before recovery to refuse a damaged log up front, or from `ickptctl fsck`
// for offline auditing.
#pragma once

#include <string>
#include <vector>

#include "core/type_registry.hpp"
#include "verify/diagnostics.hpp"

namespace ickpt::verify {

/// Fsck the log at `path`. A missing or empty file is a clean, empty chain.
Report fsck_log(const std::string& path, const core::TypeRegistry& registry);

/// Fsck an in-memory log image (fault-injection tests).
Report fsck_bytes(const std::vector<std::uint8_t>& bytes,
                  const core::TypeRegistry& registry);

/// Structural summary of one generation on a rotation chain (a quarantined
/// `<path>.quarantine.<n>` file, or the live log itself).
struct GenerationSummary {
  std::string path;
  /// True for the live log (always the last entry of ChainReport).
  bool live = false;
  std::size_t frames = 0;
  /// Frame-level scan saw no damage (salvage found nothing to skip).
  bool scan_clean = true;
  /// The generation's first decodable frame is a full checkpoint — the
  /// rebase invariant every post-rotation generation must satisfy.
  bool starts_full = false;
  /// At least one full checkpoint anywhere in the generation.
  bool has_full = false;
  /// Stream-header epochs of the first/last decodable frames (0/0 when the
  /// generation is empty or undecodable).
  Epoch first_epoch = 0;
  Epoch last_epoch = 0;
};

/// fsck_log over every generation of a rotation chain plus chain-level
/// invariants: generations ordered oldest → newest (live log last).
struct ChainReport {
  /// Per-generation fsck findings (messages prefixed with the file) plus
  /// the chain-level checks:
  ///   "generation-order"  (kError)   — epoch ranges overlap or go
  ///                                    backwards across generations;
  ///   "generation-rebase" (kError)   — a post-rotation generation does not
  ///                                    begin with a full checkpoint, so an
  ///                                    incremental chain spans the
  ///                                    rotation;
  ///   "generation-empty"  (kNote)    — an empty generation (the signature
  ///                                    of a crash between quarantine
  ///                                    rename and rebase).
  Report report;
  std::vector<GenerationSummary> generations;

  [[nodiscard]] bool clean() const { return report.clean(); }
  [[nodiscard]] std::string to_string() const;
};

/// Fsck the whole generation chain of the log at `path`: every quarantined
/// predecessor (`<path>.quarantine.<n>`) and the live log, oldest first.
ChainReport fsck_chain(const std::string& path,
                       const core::TypeRegistry& registry);

}  // namespace ickpt::verify
