// Offline checkpoint-chain fsck: validate a log file without materializing
// the object graph.
//
// `ickptctl verify` answers "can this log be recovered" by actually
// recovering it — O(live objects) memory and a registry of live classes.
// This pass answers the same question structurally, pulling frames one at a
// time off an io::FrameIterator (O(largest frame) memory — the log is never
// buffered whole) and pushing each through a scan-mode core::Recovery
// (transient per-record instances, O(1) live objects), checking the
// invariants recovery relies on:
//
//   frame level   — magic, CRC over seq/length/payload, sequence-number
//                   monotonicity (a damaged or torn region is "log-tail",
//                   kError, with the byte offset of the first damaged byte;
//                   `ickptctl fsck --repair` truncates there).
//   stream level  — header magic/version/mode, record tags, per-class
//                   payload validation, no trailing bytes, no null object
//                   ids ("frame-decode", kError).
//   chain level   — epochs strictly increasing across frames
//                   ("epoch-order"); the chain begins with a full
//                   checkpoint ("chain-start", kWarning); no object changes
//                   type within a recovery window ("type-change").
//   id closure    — over the final recovery window (the most recent full
//                   checkpoint plus its deltas — exactly what
//                   CheckpointManager::recover replays): every referenced
//                   child id is defined ("dangling-child"), every named
//                   root exists ("missing-root"), and an id recorded twice
//                   within one frame is flagged ("dup-record", kWarning —
//                   the double-record signature of an unguarded shared
//                   subobject).
//
// Report::clean() (no errors) means replaying the log cannot fail; call it
// before recovery to refuse a damaged log up front, or from `ickptctl fsck`
// for offline auditing.
#pragma once

#include <string>
#include <vector>

#include "core/type_registry.hpp"
#include "verify/diagnostics.hpp"

namespace ickpt::verify {

/// Fsck the log at `path`. A missing or empty file is a clean, empty chain.
Report fsck_log(const std::string& path, const core::TypeRegistry& registry);

/// Fsck an in-memory log image (fault-injection tests).
Report fsck_bytes(const std::vector<std::uint8_t>& bytes,
                  const core::TypeRegistry& registry);

}  // namespace ickpt::verify
