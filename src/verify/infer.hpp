// Static pattern inference: construct a modification pattern from a
// program's interprocedural write sets — the paper's "automatically derive
// the modification pattern" future work, done soundly.
//
// Where spec::PatternInferencer *learns* a pattern from observed dirty
// flags (valid only while the program keeps behaving as observed, and
// unsound when the observation epochs under-exercise a position),
// infer_pattern *proves* one: it runs analysis::SideEffectAnalysis to its
// fixpoint and builds the PatternNode directly from the phase's transitive
// write set,
//
//   * bound position whose global is in the write set  -> kMaybeModified
//     (the phase may write it; the runtime test stays),
//   * bound position whose global is provably clean    -> kUnmodified
//     (no test, no record),
//   * subtree in which every position is bound and provably clean -> skip
//     (no trace of the subtree in the residual code),
//   * position with no binding (or an unresolvable one) -> kMaybeModified
//     (unknown behaviour keeps the generic test — conservative, never
//     unsound).
//
// Soundness by construction: every claim stronger than kMaybeModified is
// backed by the write-set fixpoint, which over-approximates the phase's
// actual writes. The result therefore passes verify::check_pattern with
// zero error findings by design — the checker and the constructor judge
// against the same analysis — and can be fed straight to spec::PlanCompiler
// through its verify_pattern gate.
//
// Structural limits: write sets speak about *mutation*, not *shape*, so the
// constructor never emits expect_absent assertions or array_count
// specializations, and it refuses recursive shapes (they need a structural
// bound no side-effect analysis can supply — declare those by hand or learn
// them dynamically).
#pragma once

#include <string>

#include "analysis/shapes.hpp"
#include "verify/pattern_check.hpp"

namespace ickpt::verify {

struct InferStaticOptions {
  /// Refuse to descend deeper than this many child levels; a recursive
  /// shape (which static inference cannot bound) is reported as a
  /// SpecError instead of infinite descent.
  std::uint32_t max_depth = 64;
};

/// A statically inferred pattern plus the accounting of how it was built.
struct StaticPattern {
  spec::PatternNode pattern;
  /// Positions judged from the write set (binding resolved to a global).
  std::size_t bound_positions = 0;
  /// Positions kept kMaybeModified because no binding covers them (or the
  /// binding named an unknown global).
  std::size_t unbound_positions = 0;
  /// Bound positions in the phase's write set (kept kMaybeModified).
  std::size_t written_positions = 0;
  /// Bound positions proven clean (kUnmodified, or folded into a skip).
  std::size_t clean_positions = 0;
  /// Maximal provably-clean subtrees emitted as skip nodes.
  std::size_t skipped_subtrees = 0;
};

/// Construct the sound pattern for executing `phase_function` of `program`
/// over structures of `shape`, with `binding` tying shape positions to
/// program globals (same binding vocabulary as check_pattern). Throws
/// SpecError when the phase function does not exist or the shape recurses
/// past opts.max_depth.
StaticPattern infer_pattern(const analysis::Program& program,
                            const std::string& phase_function,
                            const spec::ShapeDescriptor& shape,
                            const PatternBinding& binding,
                            InferStaticOptions opts = {});

/// Convenience: infer the pattern for `phase` of the bundled analysis-engine
/// model (phase_model_source / attributes_binding), for the Attributes
/// shape — the static counterpart of analysis::make_phase_pattern.
StaticPattern infer_attributes_pattern(analysis::Phase phase,
                                       InferStaticOptions opts = {});

}  // namespace ickpt::verify
