#include "verify/infer.hpp"

#include <map>

#include "analysis/parser.hpp"
#include "analysis/side_effect.hpp"

namespace ickpt::verify {

namespace {

/// What the write set lets us say about one shape position.
enum class Judgment {
  kUnknown,  // no (resolvable) binding: keep the generic test
  kWritten,  // bound, in the write set: keep the test
  kClean,    // bound, provably unwritten: drop test and record
};

struct Builder {
  const analysis::Program& program;
  const analysis::VarSet& writes;
  std::map<std::vector<std::size_t>, std::string> binding_by_path;
  InferStaticOptions opts;
  StaticPattern* out;

  Judgment judge(const std::vector<std::size_t>& path) const {
    auto it = binding_by_path.find(path);
    if (it == binding_by_path.end()) return Judgment::kUnknown;
    int global = program.find_global(it->second);
    if (global < 0) return Judgment::kUnknown;  // conservative, never unsound
    return std::binary_search(writes.begin(), writes.end(), global)
               ? Judgment::kWritten
               : Judgment::kClean;
  }

  /// Build the pattern for the subtree rooted at `shape`/`path`. Sets
  /// `provably_clean` when every position in the subtree is bound and
  /// outside the write set — the caller then collapses it to a skip.
  spec::PatternNode build(const spec::ShapeDescriptor& shape,
                          std::vector<std::size_t>& path, std::uint32_t depth,
                          bool& provably_clean) {
    if (depth > opts.max_depth)
      throw SpecError(
          "infer_pattern: shape '" + shape.name + "' recurses past depth " +
          std::to_string(opts.max_depth) +
          "; write sets cannot bound a recursive structure — declare its "
          "pattern by hand or learn it dynamically");

    spec::PatternNode node;
    const Judgment self = judge(path);
    switch (self) {
      case Judgment::kUnknown:
        ++out->unbound_positions;
        node.self = spec::ModStatus::kMaybeModified;
        break;
      case Judgment::kWritten:
        ++out->bound_positions;
        ++out->written_positions;
        node.self = spec::ModStatus::kMaybeModified;
        break;
      case Judgment::kClean:
        ++out->bound_positions;
        ++out->clean_positions;
        node.self = spec::ModStatus::kUnmodified;
        break;
    }
    provably_clean = self == Judgment::kClean;

    std::size_t child_index = 0;
    node.children.reserve(shape.child_count());
    for (const spec::Field& field : shape.fields) {
      const auto* child = std::get_if<spec::ChildField>(&field);
      if (child == nullptr) continue;
      path.push_back(child_index++);
      bool child_clean = false;
      spec::PatternNode child_node =
          build(*child->shape, path, depth + 1, child_clean);
      path.pop_back();
      if (child_clean) {
        // Maximal provably-clean subtree: no trace of it in the residual
        // code. The statistics already counted its positions as clean.
        ++out->skipped_subtrees;
        child_node = spec::PatternNode::skipped();
      } else {
        provably_clean = false;
      }
      node.children.push_back(std::move(child_node));
    }
    return node;
  }
};

}  // namespace

StaticPattern infer_pattern(const analysis::Program& program,
                            const std::string& phase_function,
                            const spec::ShapeDescriptor& shape,
                            const PatternBinding& binding,
                            InferStaticOptions opts) {
  int phase_fn = program.find_function(phase_function);
  if (phase_fn < 0)
    throw SpecError("infer_pattern: program defines no function '" +
                    phase_function + "'");

  analysis::SideEffectAnalysis effects =
      analysis::SideEffectAnalysis::fixpoint(program);

  StaticPattern result;
  Builder builder{program, effects.writes_of(phase_fn), {}, opts, &result};
  for (const PatternBinding::Entry& entry : binding.entries())
    builder.binding_by_path.emplace(entry.path, entry.global);

  std::vector<std::size_t> path;
  bool root_clean = false;
  result.pattern = builder.build(shape, path, 0, root_clean);
  if (root_clean) {
    // The whole structure is provably untouched by the phase: the residual
    // plan is empty (header and end tag only).
    ++result.skipped_subtrees;
    result.pattern = spec::PatternNode::skipped();
  }
  return result;
}

StaticPattern infer_attributes_pattern(analysis::Phase phase,
                                       InferStaticOptions opts) {
  auto program = analysis::parse_program(phase_model_source());
  auto shapes = analysis::AnalysisShapes::make();
  return infer_pattern(*program, phase_function_name(phase),
                       *shapes.attributes, attributes_binding(), opts);
}

}  // namespace ickpt::verify
