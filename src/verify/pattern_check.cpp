#include "verify/pattern_check.hpp"

#include <algorithm>
#include <sstream>

#include "analysis/binding_time.hpp"
#include "analysis/eval_time.hpp"
#include "analysis/parser.hpp"
#include "analysis/side_effect.hpp"
#include "spec/compiler.hpp"
#include "verify/extract/extract.hpp"
#include "verify/extract/model_gen.hpp"

namespace ickpt::verify {

namespace {

std::string path_string(const std::vector<std::size_t>& path) {
  if (path.empty()) return "/";
  std::string out;
  for (std::size_t index : path) out += "/" + std::to_string(index);
  return out;
}

void collect_calls_expr(const analysis::Expr& expr, std::vector<int>& out) {
  if (expr.kind == analysis::ExprKind::kCall) out.push_back(expr.callee_index);
  for (const auto& operand : expr.operands) collect_calls_expr(*operand, out);
}

void collect_calls_stmt(const analysis::Stmt& stmt, std::vector<int>& out) {
  if (stmt.expr1 != nullptr) collect_calls_expr(*stmt.expr1, out);
  if (stmt.expr3 != nullptr) collect_calls_expr(*stmt.expr3, out);
  if (stmt.init_stmt != nullptr) collect_calls_stmt(*stmt.init_stmt, out);
  if (stmt.step_stmt != nullptr) collect_calls_stmt(*stmt.step_stmt, out);
  for (const auto& child : stmt.body) collect_calls_stmt(*child, out);
  for (const auto& child : stmt.else_body) collect_calls_stmt(*child, out);
}

/// Functions transitively reachable from `entry`, entry first.
std::vector<int> reachable_functions(const analysis::Program& program,
                                     int entry) {
  std::vector<bool> seen(program.functions.size(), false);
  std::vector<int> order;
  std::vector<int> work{entry};
  seen[static_cast<std::size_t>(entry)] = true;
  while (!work.empty()) {
    int fn = work.back();
    work.pop_back();
    order.push_back(fn);
    std::vector<int> callees;
    for (const auto& stmt : program.functions[static_cast<std::size_t>(fn)].body)
      collect_calls_stmt(*stmt, callees);
    for (int callee : callees) {
      if (callee < 0 || seen[static_cast<std::size_t>(callee)]) continue;
      seen[static_cast<std::size_t>(callee)] = true;
      work.push_back(callee);
    }
  }
  return order;
}

const analysis::Stmt* find_assign(const analysis::Stmt& stmt, int global) {
  if (stmt.kind == analysis::StmtKind::kAssign && stmt.symbol == global)
    return &stmt;
  const analysis::Stmt* hit = nullptr;
  auto search = [&](const analysis::Stmt* nested) {
    if (hit == nullptr && nested != nullptr) hit = find_assign(*nested, global);
  };
  search(stmt.init_stmt.get());
  search(stmt.step_stmt.get());
  for (const auto& child : stmt.body) search(child.get());
  for (const auto& child : stmt.else_body) search(child.get());
  return hit;
}

/// The statement that proves the phase writes `global`: the first assignment
/// to it inside any function reachable from the phase entry.
const analysis::Stmt* find_witness(const analysis::Program& program,
                                   const std::vector<int>& reachable,
                                   int global) {
  for (int fn : reachable) {
    for (const auto& stmt :
         program.functions[static_cast<std::size_t>(fn)].body) {
      const analysis::Stmt* hit = find_assign(*stmt, global);
      if (hit != nullptr) return hit;
    }
  }
  return nullptr;
}

/// Effective pattern claim at one position, with the compiler's semantics:
/// an ancestor skip covers the whole subtree; a missing node under a
/// partially populated pattern defaults to kMaybeModified.
struct Claim {
  bool skipped = false;
  bool absent = false;
  spec::ModStatus self = spec::ModStatus::kMaybeModified;
};

Claim resolve_claim(const spec::PatternNode& pattern,
                    const std::vector<std::size_t>& path) {
  Claim claim;
  const spec::PatternNode* node = &pattern;
  for (std::size_t index : path) {
    if (node->skip) claim.skipped = true;
    if (node->expect_absent) {
      // Positions below an asserted-absent child cannot exist; treat the
      // whole subtree as absent.
      claim.absent = true;
      return claim;
    }
    if (index >= node->children.size()) {
      // Unpopulated: compiler synthesizes MaybeModified (still under any
      // ancestor skip collected so far).
      claim.self = spec::ModStatus::kMaybeModified;
      return claim;
    }
    node = &node->children[index];
  }
  if (node->skip) claim.skipped = true;
  claim.absent = node->expect_absent;
  claim.self = node->self;
  return claim;
}

}  // namespace

Report check_pattern(const analysis::Program& program,
                     const std::string& phase_function,
                     const spec::ShapeDescriptor& shape,
                     const spec::PatternNode& pattern,
                     const PatternBinding& binding) {
  Report report;
  report.pass = "pattern";

  for (const std::string& issue : spec::validate_pattern(shape, pattern)) {
    Finding finding;
    finding.severity = Severity::kError;
    finding.code = "pattern-structure";
    finding.message = issue;
    report.add(std::move(finding));
  }

  int phase_fn = program.find_function(phase_function);
  if (phase_fn < 0) {
    Finding finding;
    finding.severity = Severity::kError;
    finding.code = "no-phase-function";
    finding.message =
        "program defines no function '" + phase_function + "'";
    report.add(std::move(finding));
    report.summary = "phase '" + phase_function + "' not found";
    return report;
  }

  analysis::SideEffectAnalysis effects =
      analysis::SideEffectAnalysis::fixpoint(program);
  const analysis::VarSet& writes = effects.writes_of(phase_fn);
  std::vector<int> reachable = reachable_functions(program, phase_fn);

  std::size_t judged = 0;
  for (const PatternBinding::Entry& entry : binding.entries()) {
    int global = program.find_global(entry.global);
    if (global < 0) {
      Finding finding;
      finding.severity = Severity::kWarning;
      finding.code = "unknown-global";
      finding.position = path_string(entry.path);
      finding.message = "binding names no program global '" + entry.global +
                        "'; position not judged";
      report.add(std::move(finding));
      continue;
    }
    ++judged;
    const bool written =
        std::binary_search(writes.begin(), writes.end(), global);
    Claim claim = resolve_claim(pattern, entry.path);

    Finding finding;
    finding.position = path_string(entry.path);
    if (claim.skipped || claim.self == spec::ModStatus::kUnmodified) {
      if (!written) continue;  // proven: the claim over-approximates.
      const analysis::Stmt* witness =
          find_witness(program, reachable, global);
      finding.severity = Severity::kError;
      finding.code = claim.skipped ? "unsound-skip" : "unsound-unmodified";
      std::ostringstream msg;
      msg << "pattern declares position " << finding.position << " ("
          << entry.global << ") "
          << (claim.skipped ? "skipped" : "provably unmodified")
          << ", but phase '" << phase_function << "' writes " << entry.global;
      if (witness != nullptr) {
        finding.witness_stmt = witness->index;
        finding.witness_line = witness->line;
        msg << " (witness: statement #" << witness->index << ", line "
            << witness->line << ")";
      }
      msg << "; an incremental checkpoint under this plan would drop the "
             "modification";
      finding.message = msg.str();
    } else if (claim.absent) {
      if (!written) continue;
      const analysis::Stmt* witness =
          find_witness(program, reachable, global);
      finding.severity = Severity::kWarning;
      finding.code = "absent-written";
      if (witness != nullptr) {
        finding.witness_stmt = witness->index;
        finding.witness_line = witness->line;
      }
      finding.message = "position " + finding.position + " (" + entry.global +
                        ") is asserted absent but phase '" + phase_function +
                        "' writes " + entry.global +
                        "; the runtime null assertion will fail";
    } else if (claim.self == spec::ModStatus::kMaybeModified) {
      if (written) continue;  // the test is earning its keep.
      finding.severity = Severity::kNote;
      finding.code = "over-conservative";
      finding.message = "position " + finding.position + " (" + entry.global +
                        ") keeps a runtime test but phase '" + phase_function +
                        "' provably never writes " + entry.global +
                        "; mark it kUnmodified or skip the subtree (perf, "
                        "not safety)";
    } else {  // kModified
      if (written) continue;
      // Distinguish "another phase writes it" (mildly wasteful: the record
      // is stale data some other phase produced) from "no phase at all
      // writes it" (the record can never change across any checkpoint —
      // promote, the position should be captured structurally once).
      int writer_fn = -1;
      for (const analysis::Function& fn : program.functions) {
        if (fn.index == phase_fn) continue;
        if (effects.writes_global(fn.index, global)) {
          writer_fn = fn.index;
          break;
        }
      }
      finding.code = "redundant-record";
      if (writer_fn < 0) {
        finding.severity = Severity::kWarning;
        finding.message =
            "position " + finding.position + " (" + entry.global +
            ") is recorded unconditionally but no function in the program "
            "writes " + entry.global +
            " (every transitive write set excludes it); the record is dead "
            "weight in every checkpoint of every phase";
      } else {
        const std::string& writer =
            program.functions[static_cast<std::size_t>(writer_fn)].name;
        const analysis::Stmt* witness = find_witness(
            program, reachable_functions(program, writer_fn), global);
        finding.severity = Severity::kNote;
        std::ostringstream msg;
        msg << "position " << finding.position << " (" << entry.global
            << ") is recorded unconditionally but phase '" << phase_function
            << "' provably never writes " << entry.global << "; only '"
            << writer << "' does";
        if (witness != nullptr) {
          finding.witness_stmt = witness->index;
          finding.witness_line = witness->line;
          msg << " (witness: statement #" << witness->index << ", line "
              << witness->line << ")";
        }
        msg << " — every record of it under this phase is redundant";
        finding.message = msg.str();
      }
    }
    report.add(std::move(finding));
  }

  std::ostringstream summary;
  summary << "pattern for '" << shape.name << "' vs phase '" << phase_function
          << "': " << judged << " bound position(s) judged, "
          << writes.size() << " global(s) in the phase write set";
  report.summary = summary.str();
  return report;
}

std::string phase_model_source() {
  // Generated, never hand-written: the model is a pure function of the
  // engine's own WriteManifests, and extract::check_extraction proves those
  // manifests against a recorded witness of the real engine. Anything this
  // file's passes prove against the model therefore transitively speaks
  // about declared-and-witnessed engine behaviour.
  auto manifests = extract::engine_manifests();
  return extract::generate_phase_model(manifests);
}

PatternBinding attributes_binding() {
  // One entry per Attributes position, straight from the same field table
  // the witness hook and the model generator use — binding, model, and
  // manifests cannot disagree on naming.
  PatternBinding binding;
  for (std::size_t i = 0; i < analysis::kAttrFieldCount; ++i) {
    auto field = static_cast<analysis::AttrField>(i);
    std::span<const std::size_t> path = analysis::attr_field_path(field);
    binding.bind({path.begin(), path.end()},
                 analysis::attr_field_global(field));
  }
  return binding;
}

const char* phase_function_name(analysis::Phase phase) {
  // Phase functions in the generated model are named by the manifests; the
  // structure-only pattern is judged against main, whose transitive write
  // set is the union of every phase's.
  switch (phase) {
    case analysis::Phase::kStructureOnly:
      return "main";
    case analysis::Phase::kSideEffect:
      return analysis::SideEffectAnalysis::write_manifest().phase;
    case analysis::Phase::kBindingTime:
      return analysis::BindingTimeAnalysis::write_manifest().phase;
    case analysis::Phase::kEvalTime:
      return analysis::EvalTimeAnalysis::write_manifest().phase;
  }
  return "main";
}

Report check_attributes_pattern(analysis::Phase phase,
                                const spec::PatternNode& pattern) {
  auto program = analysis::parse_program(phase_model_source());
  auto shapes = analysis::AnalysisShapes::make();
  return check_pattern(*program, phase_function_name(phase),
                       *shapes.attributes, pattern, attributes_binding());
}

Report check_phase_pattern(analysis::Phase phase) {
  return check_attributes_pattern(phase, analysis::make_phase_pattern(phase));
}

}  // namespace ickpt::verify
