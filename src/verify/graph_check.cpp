#include "verify/graph_check.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "io/byte_sink.hpp"

namespace ickpt::verify {

namespace {

std::string join_path(const std::vector<ObjectId>& ids) {
  std::string out;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i != 0) out += "->";
    out += std::to_string(ids[i]);
  }
  return out;
}

}  // namespace

Report check_graph(std::span<core::Checkpointable* const> roots,
                   const GraphCheckOptions& options) {
  Report report;
  report.pass = "graph";

  std::vector<ObjectId> stack;
  std::unordered_set<ObjectId> on_stack;
  // First-seen parent of every visited id (kNullObjectId for roots); lets
  // the sharing diagnostic reconstruct the original path without storing a
  // path per object.
  std::unordered_map<ObjectId, ObjectId> parent;
  std::size_t objects = 0;
  std::size_t cycles = 0;
  std::size_t shared = 0;
  std::size_t suppressed = 0;

  auto first_path = [&](ObjectId id) {
    std::vector<ObjectId> ids{id};
    auto it = parent.find(id);
    while (it != parent.end() && it->second != kNullObjectId) {
      ids.push_back(it->second);
      it = parent.find(it->second);
    }
    std::reverse(ids.begin(), ids.end());
    return join_path(ids);
  };
  auto add = [&](Finding finding) {
    if (report.findings.size() >= options.max_findings) {
      ++suppressed;
      return;
    }
    report.add(std::move(finding));
  };

  core::VisitHooks hooks;
  hooks.enter = [&](core::Checkpointable& o) {
    ObjectId id = o.info().id();
    parent.emplace(id, stack.empty() ? kNullObjectId : stack.back());
    stack.push_back(id);
    on_stack.insert(id);
    ++objects;
  };
  hooks.leave = [&](core::Checkpointable& o) {
    stack.pop_back();
    on_stack.erase(o.info().id());
  };
  hooks.revisit = [&](core::Checkpointable& o) {
    ObjectId id = o.info().id();
    Finding finding;
    finding.object_id = id;
    if (on_stack.count(id) != 0) {
      ++cycles;
      // The cycle is the stack suffix from the earlier occurrence of id,
      // closed by the revisit edge.
      auto from = std::find(stack.begin(), stack.end(), id);
      std::vector<ObjectId> loop(from, stack.end());
      loop.push_back(id);
      finding.severity = Severity::kError;
      finding.code = "cycle";
      finding.position = join_path(loop);
      finding.message = "cycle through object " + std::to_string(id) +
                        " (" + finding.position +
                        "); an unguarded checkpoint of this graph does not "
                        "terminate";
    } else {
      ++shared;
      std::vector<ObjectId> here = stack;
      here.push_back(id);
      finding.severity = Severity::kWarning;
      finding.code = "shared";
      finding.position = join_path(here);
      finding.message = "object " + std::to_string(id) +
                        " is shared: first reached via " + first_path(id) +
                        ", again via " + finding.position +
                        "; an unguarded checkpoint records it once per path";
    }
    add(std::move(finding));
  };

  io::VectorSink sink;
  io::DataWriter writer(sink);
  core::CheckpointOptions opts;
  opts.dry_run = true;
  opts.cycle_guard = true;  // termination on cyclic graphs + revisit events
  opts.hooks = &hooks;
  core::Checkpoint walker(writer, 0, roots, opts);
  for (core::Checkpointable* root : roots)
    if (root != nullptr) walker.checkpoint(*root);
  walker.end();

  std::ostringstream summary;
  summary << objects << " object(s) under " << roots.size() << " root(s): "
          << cycles << " cycle(s), " << shared << " shared subobject(s)";
  if (suppressed != 0)
    summary << " (" << suppressed << " finding(s) suppressed past the cap)";
  report.summary = summary.str();
  return report;
}

}  // namespace ickpt::verify
