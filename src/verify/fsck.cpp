#include "verify/fsck.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/recovery.hpp"
#include "core/retention.hpp"
#include "io/frame_index.hpp"
#include "io/stable_storage.hpp"

namespace ickpt::verify {

namespace {

// Streams frames one at a time off the iterator, so fsck memory is
// O(largest frame) + O(ids in the final recovery window) — never the whole
// log (io::FrameIterator reads the file in chunks; frames are validated and
// discarded as they pass).
Report fsck_frames(io::FrameIterator& frames,
                   const core::TypeRegistry& registry) {
  Report report;
  report.pass = "fsck";

  // State of the current recovery window (most recent full checkpoint and
  // the incrementals after it). Only the final window feeds recovery, so
  // closure is judged once, at end of log, over that window.
  std::unordered_set<ObjectId> defined;
  std::unordered_map<ObjectId, TypeId> types;
  // child id -> frame seq of the first reference (dedup: one finding per id)
  std::unordered_map<ObjectId, std::int64_t> refs;

  core::StreamHeader last_header;
  bool have_header = false;
  bool have_epoch = false;
  Epoch prev_epoch = 0;
  std::size_t records = 0;
  std::size_t windows = 0;
  std::size_t frame_count = 0;

  io::Frame frame;
  for (bool first = true; frames.next(frame); first = false) {
    ++frame_count;
    const auto seq = static_cast<std::int64_t>(frame.seq);
    const auto at = static_cast<std::int64_t>(frame.offset);

    core::StreamHeader header;
    try {
      header = core::peek_header(frame.payload);
    } catch (const Error& e) {
      Finding finding;
      finding.severity = Severity::kError;
      finding.code = "frame-decode";
      finding.frame_seq = seq;
      finding.byte_offset = at;
      finding.message = e.what();
      report.add(std::move(finding));
      continue;
    }

    if (have_epoch && header.epoch <= prev_epoch) {
      Finding finding;
      finding.severity = Severity::kError;
      finding.code = "epoch-order";
      finding.frame_seq = seq;
      finding.byte_offset = at;
      finding.message = "epoch " + std::to_string(header.epoch) +
                        " does not increase over the preceding frame's epoch " +
                        std::to_string(prev_epoch);
      report.add(std::move(finding));
    }
    prev_epoch = header.epoch;
    have_epoch = true;

    if (first && header.mode != core::Mode::kFull) {
      Finding finding;
      finding.severity = Severity::kWarning;
      finding.code = "chain-start";
      finding.frame_seq = seq;
      finding.byte_offset = at;
      finding.message =
          "chain begins with an incremental checkpoint; objects unmodified "
          "since before this log have no record";
      report.add(std::move(finding));
    }

    if (header.mode == core::Mode::kFull) {
      // A full checkpoint re-records everything reachable: new window.
      defined.clear();
      types.clear();
      refs.clear();
      ++windows;
    }

    std::unordered_set<ObjectId> in_frame;
    core::Recovery scanner(registry, core::Recovery::ApplyMode::kScan);
    scanner.set_record_observer([&](const core::RecordEvent& event) {
      ++records;
      if (!in_frame.insert(event.id).second) {
        Finding finding;
        finding.severity = Severity::kWarning;
        finding.code = "dup-record";
        finding.frame_seq = seq;
        finding.byte_offset = at;
        finding.object_id = event.id;
        finding.message = "object " + std::to_string(event.id) +
                          " recorded twice within one frame (unguarded "
                          "shared subobject?); recovery keeps the last "
                          "record";
        report.add(std::move(finding));
      }
      auto [it, inserted] = types.emplace(event.id, event.type);
      if (!inserted && it->second != event.type) {
        Finding finding;
        finding.severity = Severity::kError;
        finding.code = "type-change";
        finding.frame_seq = seq;
        finding.byte_offset = at;
        finding.object_id = event.id;
        finding.message = "object " + std::to_string(event.id) +
                          " changes type (" + std::to_string(it->second) +
                          " -> " + std::to_string(event.type) +
                          ") within one recovery window";
        report.add(std::move(finding));
      }
      defined.insert(event.id);
      for (ObjectId child : event.children) refs.emplace(child, seq);
    });

    try {
      io::DataReader reader(frame.payload);
      header = scanner.apply(reader);
      last_header = header;
      have_header = true;
    } catch (const Error& e) {
      Finding finding;
      finding.severity = Severity::kError;
      finding.code = "frame-decode";
      finding.frame_seq = seq;
      finding.byte_offset = at;
      finding.message = e.what();
      report.add(std::move(finding));
    }
  }

  if (!frames.clean()) {
    Finding finding;
    finding.severity = Severity::kError;
    finding.code = "log-tail";
    finding.byte_offset = static_cast<std::int64_t>(frames.stop_offset());
    finding.message = "log damaged after " + std::to_string(frame_count) +
                      " valid frame(s): " + frames.stop_reason() +
                      " at byte " + std::to_string(frames.stop_offset());
    report.add(std::move(finding));
  }

  // Referential closure of the final recovery window.
  for (const auto& [child, seq] : refs) {
    if (defined.count(child) != 0) continue;
    Finding finding;
    finding.severity = Severity::kError;
    finding.code = "dangling-child";
    finding.frame_seq = seq;
    finding.object_id = child;
    finding.message = "child reference to object " + std::to_string(child) +
                      " which no record in the recovery window defines; "
                      "recovery would fail to link it";
    report.add(std::move(finding));
  }
  if (have_header) {
    for (ObjectId root : last_header.roots) {
      if (root == kNullObjectId || defined.count(root) != 0) continue;
      Finding finding;
      finding.severity = Severity::kError;
      finding.code = "missing-root";
      finding.object_id = root;
      finding.message = "header names root object " + std::to_string(root) +
                        " but no record in the recovery window defines it";
      report.add(std::move(finding));
    }
  }

  std::ostringstream summary;
  summary << frame_count << " frame(s), " << records << " record(s), "
          << windows << " full-checkpoint window(s)";
  report.summary = summary.str();
  return report;
}

/// Retention audit: when a `<log>.retain` manifest declares what a policy
/// compaction kept, the log must honor the declaration exactly. An epoch on
/// the log (at or below the declared newest) that the manifest does not
/// declare is a half-applied policy — damage, not tidiness; a declared
/// epoch missing from the log is lost history; a declared epoch off the
/// binomial schedule means the manifest itself lies. Epochs *above* the
/// declared newest are ordinary post-compaction appends and exempt.
void audit_retention(Report& report, const std::string& path) {
  std::optional<core::RetentionManifest> manifest;
  try {
    manifest = core::RetentionManifest::load(path);
  } catch (const CorruptionError& e) {
    Finding finding;
    finding.severity = Severity::kError;
    finding.code = "retention-policy";
    finding.message = e.what();
    report.add(std::move(finding));
    return;
  }
  if (!manifest.has_value()) return;  // never policy-compacted: nothing due

  const io::FrameIndex index =
      io::index_frames(path, {.salvage = true}, core::stream_header_probe());

  for (const io::IndexedFrame& f : index.frames) {
    if (!f.header_ok || f.epoch > manifest->newest) continue;
    if (manifest->declares(f.epoch)) continue;
    Finding finding;
    finding.severity = Severity::kError;
    finding.code = "retention-undeclared";
    finding.frame_seq = static_cast<std::int64_t>(f.seq);
    finding.byte_offset = static_cast<std::int64_t>(f.offset);
    finding.message =
        "epoch " + std::to_string(f.epoch) +
        " is on the log but absent from the declared retention schedule "
        "(newest " +
        std::to_string(manifest->newest) +
        "); a half-applied policy compaction left undeclared history";
    report.add(std::move(finding));
  }

  for (Epoch e : manifest->epochs) {
    if (!core::RetentionPolicy::retained(e, manifest->newest)) {
      Finding finding;
      finding.severity = Severity::kError;
      finding.code = "retention-policy";
      finding.message = "manifest declares epoch " + std::to_string(e) +
                        " which is not on the binomial schedule for newest "
                        "epoch " +
                        std::to_string(manifest->newest);
      report.add(std::move(finding));
    }
    const std::optional<std::size_t> at = index.find_epoch(e);
    if (!at.has_value()) {
      Finding finding;
      finding.severity = Severity::kError;
      finding.code = "retention-missing";
      finding.message = "declared retained epoch " + std::to_string(e) +
                        " has no parseable frame on the log; retained "
                        "history was lost";
      report.add(std::move(finding));
      continue;
    }
    // Reachability: the epoch's frame must be a full checkpoint, or sit in
    // an unbroken run of parseable frames below an anchoring full — the
    // exact window recover_to_epoch would replay.
    bool reachable = false;
    for (std::size_t j = *at + 1; j-- > 0;) {
      const io::IndexedFrame& f = index.frames[j];
      if (!f.header_ok) break;  // undecodable frame breaks the replay window
      if (static_cast<core::Mode>(f.mode) == core::Mode::kFull) {
        reachable = true;
        break;
      }
      if (f.resync) break;  // a corrupt gap precedes: deltas may be missing
    }
    if (!reachable) {
      Finding finding;
      finding.severity = Severity::kError;
      finding.code = "retention-unreachable";
      finding.frame_seq =
          static_cast<std::int64_t>(index.frames[*at].seq);
      finding.message =
          "declared retained epoch " + std::to_string(e) +
          " is on the log but no undamaged full-checkpoint window reaches "
          "it; recover --epoch " +
          std::to_string(e) + " would fail";
      report.add(std::move(finding));
    }
  }
}

}  // namespace

Report fsck_log(const std::string& path, const core::TypeRegistry& registry) {
  io::FrameIterator frames(path);
  Report report = fsck_frames(frames, registry);
  audit_retention(report, path);
  return report;
}

Report fsck_bytes(const std::vector<std::uint8_t>& bytes,
                  const core::TypeRegistry& registry) {
  io::FrameIterator frames(bytes.data(), bytes.size());
  return fsck_frames(frames, registry);
}

namespace {

/// Structural pass over one generation: epochs and full-checkpoint layout
/// via a salvage scan (tolerant — quarantined generations are damaged by
/// definition and still need summarizing).
GenerationSummary summarize_generation(const std::string& path, bool live) {
  GenerationSummary summary;
  summary.path = path;
  summary.live = live;
  io::FrameIterator it(path, {.salvage = true});
  io::Frame frame;
  bool first = true;
  while (it.next(frame)) {
    ++summary.frames;
    try {
      const core::StreamHeader header = core::peek_header(frame.payload);
      if (first) {
        summary.first_epoch = header.epoch;
        summary.starts_full = header.mode == core::Mode::kFull;
        first = false;
      }
      summary.last_epoch = header.epoch;
      if (header.mode == core::Mode::kFull) summary.has_full = true;
    } catch (const Error&) {
      // Undecodable payload: counted as a frame, invisible to the epoch
      // range. fsck_log reports it in detail.
    }
  }
  summary.scan_clean = it.clean();
  return summary;
}

}  // namespace

ChainReport fsck_chain(const std::string& path,
                       const core::TypeRegistry& registry) {
  ChainReport chain;
  chain.report.pass = "fsck-chain";

  // Oldest first: quarantine slots ascending, live log last.
  std::vector<std::string> files = io::StableStorage::generation_chain(path);
  std::reverse(files.begin(), files.end());
  files.push_back(path);

  for (const std::string& file : files) {
    const bool live = file == path;
    chain.generations.push_back(summarize_generation(file, live));
    Report sub = fsck_log(file, registry);
    for (Finding finding : sub.findings) {
      finding.message = file + ": " + finding.message;
      chain.report.add(std::move(finding));
    }
  }

  // Chain-level invariants across non-empty generations.
  const GenerationSummary* prev = nullptr;
  for (const GenerationSummary& gen : chain.generations) {
    if (gen.frames == 0) {
      Finding finding;
      finding.severity = Severity::kNote;
      finding.code = "generation-empty";
      finding.message =
          gen.path + ": empty generation (a crash between quarantine rename "
                     "and rebase leaves this; recovery falls back past it)";
      chain.report.add(std::move(finding));
      continue;
    }
    if (prev != nullptr) {
      if (gen.first_epoch <= prev->last_epoch) {
        Finding finding;
        finding.severity = Severity::kError;
        finding.code = "generation-order";
        finding.message =
            gen.path + ": epoch range [" + std::to_string(gen.first_epoch) +
            ", " + std::to_string(gen.last_epoch) + "] does not follow " +
            prev->path + " (ends at epoch " +
            std::to_string(prev->last_epoch) +
            "); generations must partition the epoch line";
        chain.report.add(std::move(finding));
      }
      if (!gen.starts_full) {
        Finding finding;
        finding.severity = Severity::kError;
        finding.code = "generation-rebase";
        finding.message =
            gen.path + ": generation does not begin with a full checkpoint; "
                       "its incremental chain spans the rotation from " +
            prev->path + " and cannot be replayed from this file alone";
        chain.report.add(std::move(finding));
      }
    }
    prev = &gen;
  }

  std::ostringstream summary;
  std::size_t frames = 0;
  for (const GenerationSummary& gen : chain.generations)
    frames += gen.frames;
  summary << chain.generations.size() << " generation(s), " << frames
          << " frame(s) on the chain";
  chain.report.summary = summary.str();
  return chain;
}

std::string ChainReport::to_string() const {
  std::ostringstream out;
  out << "generation chain (" << generations.size() << " file(s)):\n";
  for (const GenerationSummary& gen : generations) {
    out << "  [" << (gen.live ? "live" : "quarantine") << "] " << gen.path
        << ": " << gen.frames << " frame(s)";
    if (gen.frames > 0) {
      out << ", epochs " << gen.first_epoch << ".." << gen.last_epoch
          << (gen.starts_full ? ", starts full" : ", starts incremental")
          << (gen.has_full ? "" : ", no full checkpoint");
    }
    out << (gen.scan_clean ? "" : ", damaged") << "\n";
  }
  out << report.to_string();
  return out.str();
}

}  // namespace ickpt::verify
