// Pattern soundness checker: prove or refute a modification pattern against
// a program's interprocedural write sets.
//
// The specializer's contract (src/spec/pattern.hpp) is that a PatternNode
// over-approximates the phase's actual mutations: anything marked skip or
// kUnmodified must never be dirtied while the specialized plan is in use. A
// stale pattern silently drops modified objects from every incremental
// checkpoint — the exact corruption the paper's conclusion proposes to
// prevent by "an analysis of the data modification pattern of the program".
//
// This pass implements that analysis statically. The caller supplies the
// analysis-workload Program, the name of the function whose execution
// constitutes the phase, the shape/pattern pair, and a PatternBinding that
// says which program global each shape position stores. The checker runs
// analysis::SideEffectAnalysis to its fixpoint and compares the phase's
// transitive write set against the pattern:
//
//   * skip / kUnmodified over a written global  -> kError, with a witness
//     statement (the assignment that refutes the claim).
//   * expect_absent over a written global       -> kWarning (the runtime
//     kAssertNull fails loudly, so this is drift, not silent corruption).
//   * kMaybeModified over a provably clean global -> kNote: the pattern is
//     over-conservative — a perf bug (useless test), not a safety bug.
//   * kModified over a global this phase never writes -> kNote with a
//     witness when some other function writes it (stale-but-live data), or
//     kWarning when no function in the program writes it at all (the record
//     can never change; it is dead weight in every checkpoint).
//
// Positions with no binding are not judged; positions absent from a
// partially populated pattern default to kMaybeModified, mirroring the
// compiler; skip propagates to the whole subtree, also mirroring the
// compiler.
#pragma once

#include <string>
#include <vector>

#include "analysis/ast.hpp"
#include "analysis/shapes.hpp"
#include "spec/pattern.hpp"
#include "spec/shape.hpp"
#include "verify/diagnostics.hpp"

namespace ickpt::verify {

/// Maps shape-tree positions (paths of child indices from the root; the
/// empty path is the root itself) to the program global whose state the
/// object at that position stores.
class PatternBinding {
 public:
  struct Entry {
    std::vector<std::size_t> path;
    std::string global;
  };

  PatternBinding& bind(std::vector<std::size_t> path, std::string global) {
    entries_.push_back(Entry{std::move(path), std::move(global)});
    return *this;
  }

  [[nodiscard]] const std::vector<Entry>& entries() const noexcept {
    return entries_;
  }

 private:
  std::vector<Entry> entries_;
};

/// Check `pattern` (declared for structures of `shape`) against the write
/// set of `phase_function` in `program`. Also surfaces
/// spec::validate_pattern structural issues as errors. Report::clean() means
/// the pattern is sound: safe to hand to the plan compiler for this phase.
Report check_pattern(const analysis::Program& program,
                     const std::string& phase_function,
                     const spec::ShapeDescriptor& shape,
                     const spec::PatternNode& pattern,
                     const PatternBinding& binding);

// ---------------------------------------------------------------------------
// The paper's workload, extracted from the engine for the checker.
//
// The three analyses of §4 each write exactly one field family of every
// Attributes tree. The engine states that as data: each phase exports a
// WriteManifest (analysis/write_witness.hpp), and phase_model_source()
// *generates* the simplified-C model from those manifests — no hand-written
// phase body survives. attributes_binding() ties the Attributes shape to
// the same field table. extract::check_extraction (verify/extract/) proves
// the manifests against a recorded witness of the real engine, so the
// proofs check_pattern() produces against this model transitively speak
// about declared-and-witnessed engine behaviour.

/// Simplified-C model of the analysis engine's write behaviour, generated
/// from extract::engine_manifests() (never hand-maintained).
[[nodiscard]] std::string phase_model_source();

/// Binding of AnalysisShapes::attributes positions to the model's globals,
/// from the shared analysis::AttrField table.
[[nodiscard]] PatternBinding attributes_binding();

/// Name of the model function standing in for `phase`.
[[nodiscard]] const char* phase_function_name(analysis::Phase phase);

/// Convenience: check any pattern for the Attributes shape against `phase`
/// of the model program (parses the model, builds shape and binding).
Report check_attributes_pattern(analysis::Phase phase,
                                const spec::PatternNode& pattern);

/// Convenience: check_attributes_pattern over the paper's own pattern for
/// `phase` (analysis::make_phase_pattern).
Report check_phase_pattern(analysis::Phase phase);

}  // namespace ickpt::verify
