#include "verify/diagnostics.hpp"

#include <sstream>

namespace ickpt::verify {

const char* severity_name(Severity severity) noexcept {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::size_t Report::count_severity(Severity severity) const {
  std::size_t n = 0;
  for (const Finding& finding : findings)
    if (finding.severity == severity) ++n;
  return n;
}

const Finding* Report::first(std::string_view code) const {
  for (const Finding& finding : findings)
    if (finding.code == code) return &finding;
  return nullptr;
}

std::size_t Report::count(std::string_view code) const {
  std::size_t n = 0;
  for (const Finding& finding : findings)
    if (finding.code == code) ++n;
  return n;
}

std::string Report::to_string() const {
  std::ostringstream out;
  out << pass << ": " << summary << " — " << errors() << " error(s), "
      << warnings() << " warning(s), " << notes() << " note(s)\n";
  for (const Finding& finding : findings) {
    out << "  " << severity_name(finding.severity) << " [" << finding.code
        << "]";
    if (!finding.position.empty()) out << " at " << finding.position;
    if (finding.frame_seq >= 0) {
      out << " (frame " << finding.frame_seq;
      if (finding.byte_offset >= 0) out << " @ byte " << finding.byte_offset;
      out << ")";
    } else if (finding.byte_offset >= 0) {
      out << " (byte " << finding.byte_offset << ")";
    }
    out << ": " << finding.message << "\n";
  }
  return out.str();
}

}  // namespace ickpt::verify
