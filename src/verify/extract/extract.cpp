#include "verify/extract/extract.hpp"

#include <cstring>
#include <optional>
#include <sstream>

#include "analysis/engine.hpp"
#include "analysis/parser.hpp"
#include "analysis/program_gen.hpp"
#include "analysis/side_effect.hpp"
#include "common/error.hpp"
#include "verify/extract/model_gen.hpp"

namespace ickpt::verify::extract {

using analysis::AttrField;
using analysis::FieldSet;
using analysis::kAttrFieldCount;
using analysis::WitnessPhase;
using analysis::WriteManifest;
using analysis::WriteWitness;

namespace {

std::string field_position(AttrField field) {
  std::span<const std::size_t> path = analysis::attr_field_path(field);
  if (path.empty()) return "/";
  std::string out;
  for (std::size_t index : path) out += "/" + std::to_string(index);
  return out;
}

/// Uninstalls the witness even when the engine throws mid-corpus.
struct WitnessGuard {
  explicit WitnessGuard(WriteWitness& witness) {
    WriteWitness::install(&witness);
  }
  ~WitnessGuard() { WriteWitness::install(nullptr); }
  WitnessGuard(const WitnessGuard&) = delete;
  WitnessGuard& operator=(const WitnessGuard&) = delete;
};

}  // namespace

std::array<WriteManifest, 4> engine_manifests() {
  return {analysis::AnalysisEngine::build_manifest(),
          analysis::SideEffectAnalysis::write_manifest(),
          analysis::BindingTimeAnalysis::write_manifest(),
          analysis::EvalTimeAnalysis::write_manifest()};
}

WitnessReport record_witness(const CorpusOptions& opts) {
  WriteWitness witness;
  WitnessGuard guard(witness);

  WitnessReport report;
  for (int stages : opts.stages) {
    auto program = analysis::parse_program(
        analysis::generate_image_program(stages, opts.dim));
    core::Heap heap;
    std::optional<analysis::AnalysisEngine> engine;
    {
      WriteWitness::PhaseScope scope(witness, WitnessPhase::kBuild);
      engine.emplace(*program, heap);
    }
    {
      WriteWitness::PhaseScope scope(witness, WitnessPhase::kSideEffect);
      engine->run_side_effect();
    }
    {
      WriteWitness::PhaseScope scope(witness, WitnessPhase::kBindingTime);
      engine->run_binding_time(analysis::default_bta_config());
    }
    {
      WriteWitness::PhaseScope scope(witness, WitnessPhase::kEvalTime);
      engine->run_eval_time();
    }
    ++report.programs;
    report.statements += program->statements.size();
  }

  static constexpr WitnessPhase kSlots[] = {
      WitnessPhase::kBuild, WitnessPhase::kSideEffect,
      WitnessPhase::kBindingTime, WitnessPhase::kEvalTime};
  auto manifests = engine_manifests();
  for (std::size_t i = 0; i < manifests.size(); ++i) {
    PhaseWitnessRow row;
    row.phase = manifests[i].phase;
    row.declared = manifests[i].fields;
    row.witnessed = witness.observed(kSlots[i]);
    for (std::size_t f = 0; f < kAttrFieldCount; ++f)
      row.stores[f] = witness.stores(kSlots[i], static_cast<AttrField>(f));
    report.rows.push_back(row);
  }
  report.unattributed = witness.unattributed();
  return report;
}

Report check_extraction(std::span<const WriteManifest> manifests,
                        const WitnessReport& witness,
                        const std::string& model_source) {
  Report report;
  report.pass = "extract";

  if (witness.unattributed > 0) {
    Finding finding;
    finding.severity = Severity::kError;
    finding.code = "unattributed-write";
    finding.message =
        std::to_string(witness.unattributed) +
        " store(s) recorded outside any phase scope; the extractor cannot "
        "attribute them, so no manifest can be proven to cover them";
    report.add(std::move(finding));
  }

  // Arrow 1: recorded witness vs declared manifest, per phase.
  for (const WriteManifest& manifest : manifests) {
    const PhaseWitnessRow* row = nullptr;
    for (const PhaseWitnessRow& candidate : witness.rows)
      if (std::strcmp(candidate.phase, manifest.phase) == 0) row = &candidate;
    if (row == nullptr) {
      Finding finding;
      finding.severity = Severity::kError;
      finding.code = "no-witness-row";
      finding.message = "witness report carries no row for phase '" +
                        std::string(manifest.phase) + "'";
      report.add(std::move(finding));
      continue;
    }
    for (AttrField field : row->witnessed.minus(manifest.fields).fields()) {
      Finding finding;
      finding.severity = Severity::kError;
      finding.code = "undeclared-write";
      finding.position = field_position(field);
      finding.message =
          "phase '" + std::string(manifest.phase) + "' stored position " +
          finding.position + " (" + analysis::attr_field_name(field) + ", " +
          std::to_string(row->stores[static_cast<std::size_t>(field)]) +
          " store(s) across the corpus) but its manifest does not declare "
          "it; a plan proven against the declared model could drop those "
          "records";
      report.add(std::move(finding));
    }
    for (AttrField field : manifest.fields.minus(row->witnessed).fields()) {
      Finding finding;
      finding.severity = Severity::kWarning;
      finding.code = "unexercised";
      finding.position = field_position(field);
      finding.message =
          "manifest of phase '" + std::string(manifest.phase) +
          "' declares position " + finding.position + " (" +
          analysis::attr_field_name(field) +
          ") but the corpus never stored it; the declaration is unproven — "
          "widen the corpus or tighten the manifest";
      report.add(std::move(finding));
    }
  }

  // Arrow 2: generated-model write sets vs declared manifests, both
  // directions.
  std::unique_ptr<analysis::Program> model;
  try {
    model = analysis::parse_program(model_source);
  } catch (const Error& e) {
    Finding finding;
    finding.severity = Severity::kError;
    finding.code = "model-parse";
    finding.message = std::string("generated model does not parse: ") +
                      e.what();
    report.add(std::move(finding));
  }
  if (model != nullptr) {
    analysis::SideEffectAnalysis effects =
        analysis::SideEffectAnalysis::fixpoint(*model);
    for (const WriteManifest& manifest : manifests) {
      int fn = model->find_function(manifest.phase);
      if (fn < 0) {
        Finding finding;
        finding.severity = Severity::kError;
        finding.code = "model-missing-phase";
        finding.message = "generated model defines no function '" +
                          std::string(manifest.phase) + "'";
        report.add(std::move(finding));
        continue;
      }
      for (std::size_t f = 0; f < kAttrFieldCount; ++f) {
        auto field = static_cast<AttrField>(f);
        int global = model->find_global(analysis::attr_field_global(field));
        const bool in_model =
            global >= 0 && effects.writes_global(fn, global);
        const bool declared = manifest.fields.contains(field);
        if (declared == in_model) continue;
        Finding finding;
        finding.severity = Severity::kError;
        finding.code = declared ? "model-missing-write" : "model-extra-write";
        finding.position = field_position(field);
        finding.message =
            "phase '" + std::string(manifest.phase) + "' " +
            (declared
                 ? "declares position " + finding.position + " (" +
                       analysis::attr_field_global(field) +
                       ") but the generated model never writes it"
                 : "does not declare position " + finding.position + " (" +
                       analysis::attr_field_global(field) +
                       ") but the generated model writes it") +
            "; the model has drifted from the manifests";
        report.add(std::move(finding));
      }
    }
  }

  std::ostringstream summary;
  summary << manifests.size() << " manifest(s) vs " << witness.programs
          << " corpus program(s) (" << witness.statements
          << " Attributes tree(s)): " << report.errors() << " error(s), "
          << report.warnings() << " unexercised/warning(s)";
  report.summary = summary.str();
  return report;
}

Report self_check(const CorpusOptions& opts) {
  auto manifests = engine_manifests();
  WitnessReport witness = record_witness(opts);
  return check_extraction(manifests, witness,
                          generate_phase_model(manifests));
}

}  // namespace ickpt::verify::extract
