// Write-set extraction: prove the verify layer's phase model consistent
// with the engine that actually runs, three ways.
//
//   declared            recorded                 generated
//   WriteManifest  ⊇   WriteWitness      →      phase_model_source()
//   (per phase)         (engine driven over      (simplified-C program the
//                       a program_gen corpus)    checker/inferencer analyze)
//
//   arrow 1  witness ⊆ manifest   — no store the engine actually performs
//            escapes its phase's declaration ("undeclared-write" refutes);
//            manifest ∖ witness positions are flagged unexercised.
//   arrow 2  model == manifest    — the generated model's per-phase write
//            sets (SideEffectAnalysis fixpoint) match the declarations in
//            both directions ("model-missing-write" / "model-extra-write").
//   arrow 3  pattern vs model     — the existing check_pattern /
//            infer_pattern / verify_pattern machinery, unchanged: with
//            arrows 1 and 2 in place its proof transitively speaks about
//            declared-and-witnessed engine behaviour.
//
// All offline; nothing here runs on the checkpoint hot path. The witness
// hook the extractor installs costs instrumented setters one pointer test
// while extraction is not running.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "analysis/write_witness.hpp"
#include "verify/diagnostics.hpp"

namespace ickpt::verify::extract {

/// The program_gen corpus the extractor drives the engine over: one run per
/// `stages` entry (pipeline repetitions of the image program). `dim` only
/// scales interpretation cost, which extraction never pays.
struct CorpusOptions {
  std::vector<int> stages = {1, 2};
  int dim = 8;
};

/// Declared-vs-recorded footprint of one phase.
struct PhaseWitnessRow {
  const char* phase = "";
  analysis::FieldSet declared;
  analysis::FieldSet witnessed;
  /// Stores recorded per field (enum order).
  std::array<std::uint64_t, analysis::kAttrFieldCount> stores{};
};

struct WitnessReport {
  /// One row per engine manifest, build first.
  std::vector<PhaseWitnessRow> rows;
  std::size_t programs = 0;
  /// Attributes trees driven (statements across the corpus).
  std::size_t statements = 0;
  /// Stores recorded outside any phase scope (must be zero).
  std::uint64_t unattributed = 0;
};

/// The four manifests of the real engine, build first — the single source
/// the generated model, the bindings, and the checker all consume.
[[nodiscard]] std::array<analysis::WriteManifest, 4> engine_manifests();

/// Drive the real AnalysisEngine over the corpus with a WriteWitness
/// installed and return the per-phase recorded footprints.
[[nodiscard]] WitnessReport record_witness(const CorpusOptions& opts = {});

/// Arrows 1 and 2: witness ⊆ manifest (errors on escape, warnings on
/// unexercised declarations) and generated-model write sets == manifests
/// (errors in both directions). Report::clean() means the declared model
/// is consistent with both the recorded behaviour and the generated code.
[[nodiscard]] Report check_extraction(
    std::span<const analysis::WriteManifest> manifests,
    const WitnessReport& witness, const std::string& model_source);

/// The whole proof with engine defaults: record the witness, generate the
/// model from the manifests, check both arrows.
[[nodiscard]] Report self_check(const CorpusOptions& opts = {});

}  // namespace ickpt::verify::extract
