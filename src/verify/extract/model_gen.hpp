// Phase-model generator: the simplified-C program the pattern checker and
// static inference analyze is *generated* from the engine's WriteManifests,
// never written by hand. One global per Attributes position, one function
// per manifest; each function's body assigns exactly the globals of the
// fields its manifest declares. Because the model is a pure function of the
// manifests, the third arrow of the extraction proof (model write sets ==
// manifests) holds by construction and is re-verified by
// extract::check_extraction to catch generator regressions.
#pragma once

#include <span>
#include <string>

#include "analysis/write_witness.hpp"

namespace ickpt::verify::extract {

/// Emit the simplified-C model for `manifests`. The manifest named "build"
/// becomes the one-shot attach function; every other manifest becomes an
/// iterated phase function; main() calls build first, then each phase in
/// manifest order — so main's transitive write set is the union, standing
/// in for the structure-only phase.
[[nodiscard]] std::string generate_phase_model(
    std::span<const analysis::WriteManifest> manifests);

}  // namespace ickpt::verify::extract
