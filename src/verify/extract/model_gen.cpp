#include "verify/extract/model_gen.hpp"

#include <cstring>

namespace ickpt::verify::extract {

using analysis::AttrField;
using analysis::attr_field_global;
using analysis::kAttrFieldCount;
using analysis::WriteManifest;

std::string generate_phase_model(
    std::span<const WriteManifest> manifests) {
  std::string out = "\n";

  // One global per Attributes position, always all of them: bindings judge
  // every position, whether or not any phase declares it.
  for (std::size_t i = 0; i < kAttrFieldCount; ++i) {
    out += "int ";
    out += attr_field_global(static_cast<AttrField>(i));
    out += " = 0;\n";
  }
  out += "\n";

  const WriteManifest* build = nullptr;
  for (const WriteManifest& manifest : manifests) {
    if (std::strcmp(manifest.phase, "build") == 0) {
      build = &manifest;
      continue;
    }
    // Iterated phase: each declared field is re-stored once per iteration,
    // mirroring the engine's per-fixpoint-pass annotation rewrites.
    out += "int ";
    out += manifest.phase;
    out += "(int iters) {\n  int i = 0;\n  while (i < iters) {\n";
    for (AttrField field : manifest.fields.fields()) {
      const char* global = attr_field_global(field);
      out += "    ";
      out += global;
      out += " = ";
      out += global;
      out += " + i;\n";
    }
    out += "    i = i + 1;\n  }\n  return i;\n}\n\n";
  }

  if (build != nullptr) {
    // One-shot attach: every declared field stored once.
    out += "int build(int n) {\n";
    for (AttrField field : build->fields.fields()) {
      out += "  ";
      out += attr_field_global(field);
      out += " = n;\n";
    }
    out += "  return n;\n}\n\n";
  }

  out += "int main() {\n  int n = 8;\n";
  if (build != nullptr) out += "  n = build(n);\n";
  for (const WriteManifest& manifest : manifests) {
    if (std::strcmp(manifest.phase, "build") == 0) continue;
    out += "  n = n + ";
    out += manifest.phase;
    out += "(n);\n";
  }
  out += "  return n;\n}\n";
  return out;
}

}  // namespace ickpt::verify::extract
