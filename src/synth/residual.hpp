// Hand-written specialized checkpointing routines for the synthetic
// structures — the C++ analog of the residual programs JSpec emits
// (paper Figs. 5/6 show the same style of monolithic code for the analysis
// engine). Everything is a template over the structural constants, so the
// compiler fully inlines and unrolls: no virtual calls, no interpretation.
//
// In the engine substitution (DESIGN.md §2) these functions are the
// "inlined" engine; the PlanExecutor is the "plan" engine; the generic
// driver is the "virtual" engine. For identical state all three emit
// byte-identical checkpoint streams.
#pragma once

#include <span>

#include "common/error.hpp"
#include "core/checkpoint_format.hpp"
#include "io/data_writer.hpp"
#include "synth/structures.hpp"

namespace ickpt::synth::residual {

/// Record one element with a compile-time value count (the count is written
/// as the constant V, which specialization proved equal to nvals).
template <int V>
inline void record_elem(ListElem& e, io::DataWriter& d) {
  d.write_u8(core::kRecordTag);
  d.write_varint(ListElem::kTypeId);
  d.write_varint(e.info().id());
  d.write_i32(V);
  d.write_i32_run(e.values_data(), V);  // fused, count proven == V
  core::write_child_id(d, e.next());
  e.info().reset_modified();
}

[[noreturn]] inline void structure_violation() {
  throw SpecError("synthetic structure shorter/longer than the residual "
                  "code's compile-time list length");
}

/// Structure-only specialization (Fig. 8): inlined traversal, every
/// modified-test kept, compound tested and recorded like the generic driver.
template <int L, int V>
inline void checkpoint_compound_uniform(Compound& c, io::DataWriter& d) {
  if (c.info().modified()) {
    d.write_u8(core::kRecordTag);
    d.write_varint(Compound::kTypeId);
    d.write_varint(c.info().id());
    for (int i = 0; i < Compound::kLists; ++i)
      core::write_child_id(d, c.list(i));
    c.info().reset_modified();
  }
  for (int i = 0; i < Compound::kLists; ++i) {
    ListElem* e = c.list(i);
    for (int k = 0; k < L; ++k) {
      if (e == nullptr) structure_violation();
      if (e->info().modified()) record_elem<V>(*e, d);
      e = e->next();
    }
    if (e != nullptr) structure_violation();
  }
}

/// Full specialization (Figs. 9/10, Table 2): the compound and — when
/// LastOnly — every non-tail element are provably unmodified (no test, no
/// record); lists beyond ModLists are not even traversed.
template <int L, int V, int ModLists, bool LastOnly>
inline void checkpoint_compound_specialized(Compound& c, io::DataWriter& d) {
  static_assert(ModLists >= 0 && ModLists <= Compound::kLists);
  for (int i = 0; i < ModLists; ++i) {
    ListElem* e = c.list(i);
    if (e == nullptr) structure_violation();
    if constexpr (LastOnly) {
      for (int k = 0; k < L - 1; ++k) {
        e = e->next();
        if (e == nullptr) structure_violation();
      }
      if (e->info().modified()) record_elem<V>(*e, d);
      if (e->next() != nullptr) structure_violation();
    } else {
      for (int k = 0; k < L; ++k) {
        if (e == nullptr) structure_violation();
        if (e->info().modified()) record_elem<V>(*e, d);
        e = e->next();
      }
      if (e != nullptr) structure_violation();
    }
  }
}

/// Wrap a per-compound residual routine into a complete checkpoint stream
/// (same header/end framing as the generic driver and the plan executor).
template <class PerRoot>
inline void run_residual_checkpoint(io::DataWriter& d, Epoch epoch,
                                    std::span<Compound* const> roots,
                                    PerRoot&& per_root) {
  d.write_u8(core::kStreamMagic);
  d.write_u8(core::kFormatVersion);
  d.write_u8(static_cast<std::uint8_t>(core::Mode::kIncremental));
  d.write_u64(epoch);
  d.write_varint(roots.size());
  for (const Compound* c : roots) d.write_varint(c->info().id());
  for (Compound* c : roots) per_root(*c, d);
  d.write_u8(core::kEndTag);
}

}  // namespace ickpt::synth::residual
