// Runtime dispatch over the compile-time residual checkpointers, for the
// parameter grids the paper's evaluation sweeps (L in {1,5}, v in {1,10},
// possibly-modified lists in {1,3,5}). Each returned function pointer is one
// fully inlined residual program; picking it costs one switch, once.
#pragma once

#include "synth/residual.hpp"

namespace ickpt::synth::residual {

using ResidualFn = void (*)(Compound&, io::DataWriter&);

template <int L, int V>
ResidualFn pick_specialized(int mod_lists, bool last_only) {
  switch (mod_lists) {
    case 0:
      return last_only ? &checkpoint_compound_specialized<L, V, 0, true>
                       : &checkpoint_compound_specialized<L, V, 0, false>;
    case 1:
      return last_only ? &checkpoint_compound_specialized<L, V, 1, true>
                       : &checkpoint_compound_specialized<L, V, 1, false>;
    case 2:
      return last_only ? &checkpoint_compound_specialized<L, V, 2, true>
                       : &checkpoint_compound_specialized<L, V, 2, false>;
    case 3:
      return last_only ? &checkpoint_compound_specialized<L, V, 3, true>
                       : &checkpoint_compound_specialized<L, V, 3, false>;
    case 4:
      return last_only ? &checkpoint_compound_specialized<L, V, 4, true>
                       : &checkpoint_compound_specialized<L, V, 4, false>;
    case 5:
      return last_only ? &checkpoint_compound_specialized<L, V, 5, true>
                       : &checkpoint_compound_specialized<L, V, 5, false>;
    default:
      throw SpecError("no residual instantiated for this modified-list count");
  }
}

/// Structure-only residual (Fig. 8 style) for the benchmark grid.
inline ResidualFn uniform_fn(int list_length, int values_per_elem) {
  if (list_length == 1 && values_per_elem == 1)
    return &checkpoint_compound_uniform<1, 1>;
  if (list_length == 1 && values_per_elem == 10)
    return &checkpoint_compound_uniform<1, 10>;
  if (list_length == 5 && values_per_elem == 1)
    return &checkpoint_compound_uniform<5, 1>;
  if (list_length == 5 && values_per_elem == 10)
    return &checkpoint_compound_uniform<5, 10>;
  throw SpecError("no uniform residual instantiated for this configuration");
}

/// Fully specialized residual (Figs. 9/10 style) for the benchmark grid.
inline ResidualFn specialized_fn(int list_length, int values_per_elem,
                                 int mod_lists, bool last_only) {
  if (list_length == 1 && values_per_elem == 1)
    return pick_specialized<1, 1>(mod_lists, last_only);
  if (list_length == 1 && values_per_elem == 10)
    return pick_specialized<1, 10>(mod_lists, last_only);
  if (list_length == 5 && values_per_elem == 1)
    return pick_specialized<5, 1>(mod_lists, last_only);
  if (list_length == 5 && values_per_elem == 10)
    return pick_specialized<5, 10>(mod_lists, last_only);
  throw SpecError("no specialized residual instantiated for this "
                  "configuration");
}

}  // namespace ickpt::synth::residual
