// Deterministic generator and mutator for the synthetic benchmark (§5).
//
// The paper's test program "constructs 20,000 compound structures, randomly
// chooses constituent list elements to be modified according to the
// constraints of the experiment, and performs a single checkpoint". This
// class builds the structures, resets the flags (as a preceding checkpoint
// would), and mutates a configurable slice per epoch.
#pragma once

#include <random>
#include <span>
#include <vector>

#include "core/checkpointable.hpp"
#include "synth/structures.hpp"

namespace ickpt::synth {

struct SynthConfig {
  std::size_t num_structures = 20000;
  int list_length = 5;       // L: elements per list
  int values_per_elem = 10;  // v: int32s recorded per element
  /// How many of the five lists may contain modified elements (Figs. 9-11).
  int modified_lists = Compound::kLists;
  /// Modified elements occur only as the last element of a list (Fig. 10).
  bool last_element_only = false;
  /// Percentage of possibly-modified elements actually modified per epoch.
  int percent_modified = 100;
  std::uint64_t seed = 42;
};

class SynthWorkload {
 public:
  /// Builds the structures into `heap` per `config`.
  SynthWorkload(core::Heap& heap, const SynthConfig& config);

  [[nodiscard]] const SynthConfig& config() const noexcept { return config_; }

  [[nodiscard]] std::span<Compound* const> roots() const noexcept {
    return roots_;
  }
  /// The same roots as concrete void pointers, for the plan executor.
  [[nodiscard]] std::span<void* const> root_ptrs() const noexcept {
    return root_ptrs_;
  }
  /// The roots as Checkpointable pointers, for the generic driver.
  [[nodiscard]] std::span<core::Checkpointable* const> root_bases()
      const noexcept {
    return root_bases_;
  }

  /// Clear every modified flag, as a completed checkpoint would.
  void reset_flags() noexcept;

  /// Snapshot / restore every modified flag (compounds then elements).
  /// Used by equivalence tests: checkpointing resets flags, so comparing two
  /// execution paths on identical state requires replaying the flags.
  [[nodiscard]] std::vector<bool> save_flags() const;
  void restore_flags(const std::vector<bool>& flags);

  /// Dirty one epoch's worth of elements per the config constraints.
  /// Returns the number of elements modified.
  std::size_t mutate();

  /// Elements that the config allows to be modified.
  [[nodiscard]] std::size_t possibly_modified_population() const noexcept;
  /// Total objects in the workload (compounds + elements).
  [[nodiscard]] std::size_t total_objects() const noexcept;

 private:
  SynthConfig config_;
  std::vector<Compound*> roots_;
  std::vector<void*> root_ptrs_;
  std::vector<core::Checkpointable*> root_bases_;
  std::vector<ListElem*> elems_;  // all elements, for flag resets
  std::mt19937_64 rng_;
};

}  // namespace ickpt::synth
