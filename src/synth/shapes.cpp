#include "synth/shapes.hpp"

#include "common/error.hpp"

namespace ickpt::synth {

SynthShapes SynthShapes::make() {
  SynthShapes shapes;

  {
    ListElem sample;
    spec::ShapeBuilder<ListElem> b("synth.ListElem", sample);
    // Order mirrors ListElem::record(): nvals, values[0..nvals), next id.
    b.i32(&ListElem::nvals_);
    b.i32_array(&ListElem::vals_, &ListElem::nvals_);
    b.self_child(&ListElem::next_);
    shapes.elem = b.build();
  }

  {
    Compound sample;
    spec::ShapeBuilder<Compound> b("synth.Compound", sample);
    // Order mirrors Compound::record()/fold(): the five list heads.
    const char* base = reinterpret_cast<const char*>(&sample);
    for (int i = 0; i < Compound::kLists; ++i) {
      const char* slot = reinterpret_cast<const char*>(
          &sample.lists_[static_cast<std::size_t>(i)]);
      b.child_at(static_cast<std::size_t>(slot - base), *shapes.elem);
    }
    shapes.compound = b.build();
  }

  return shapes;
}

namespace {

/// Pattern for one list: a chain of `length` element nodes terminated by an
/// absent-next assertion. `tested_tail_only` removes the test from every
/// element but the last (Fig. 10's position knowledge).
spec::PatternNode list_pattern(int length, int values_per_elem,
                               bool tested_tail_only) {
  using spec::ModStatus;
  using spec::PatternNode;
  if (length <= 0) return PatternNode::absent();
  PatternNode node;
  node.array_count = static_cast<std::uint32_t>(values_per_elem);
  if (tested_tail_only && length > 1) {
    // Not the last element: provably unmodified, but keep walking.
    node.self = ModStatus::kUnmodified;
  } else {
    node.self = ModStatus::kMaybeModified;
  }
  node.children.push_back(
      list_pattern(length - 1, values_per_elem, tested_tail_only));
  return node;
}

/// Mark a whole pattern subtree as provably unmodified. Keeping the explicit
/// chain (rather than a bare skipped leaf) preserves the depth bound, which
/// the traversal-pruning ablation relies on.
void mark_skipped(spec::PatternNode& node) {
  node.skip = true;
  for (spec::PatternNode& child : node.children) {
    if (!child.expect_absent) mark_skipped(child);
  }
}

}  // namespace

spec::PatternNode make_synth_pattern(SpecLevel level, int list_length,
                                     int values_per_elem, int modified_lists) {
  using spec::ModStatus;
  using spec::PatternNode;
  if (list_length < 1 || list_length > 1000)
    throw SpecError("make_synth_pattern: bad list length");
  if (modified_lists < 0 || modified_lists > Compound::kLists)
    throw SpecError("make_synth_pattern: bad modified list count");
  if (values_per_elem < 1 || values_per_elem > ListElem::kMaxValues)
    throw SpecError("make_synth_pattern: bad values per element");

  PatternNode root;
  // After construction the compound skeleton is never mutated; only the
  // structure-only level keeps its test (it bakes in no modification
  // knowledge at all).
  root.self = level == SpecLevel::kStructure ? ModStatus::kMaybeModified
                                             : ModStatus::kUnmodified;
  for (int i = 0; i < Compound::kLists; ++i) {
    const bool may_modify =
        level == SpecLevel::kStructure || i < modified_lists;
    PatternNode list = list_pattern(list_length, values_per_elem,
                                    level == SpecLevel::kPositions);
    if (!may_modify) mark_skipped(list);
    root.children.push_back(std::move(list));
  }
  return root;
}

void register_types(core::TypeRegistry& registry) {
  registry.register_type<ListElem>();
  registry.register_type<Compound>();
}

}  // namespace ickpt::synth
