// The paper's synthetic benchmark structures (§5): 20,000 compound
// structures, each holding five linked lists of ListElems; each element
// stores up to ten int32 values, of which `nvals` are recorded.
//
// Mutators set the intrusive modified flag, exactly like the generated Java
// checkpointing methods update the flag on assignment.
#pragma once

#include <array>

#include "core/checkpoint.hpp"
#include "core/checkpointable.hpp"
#include "core/recovery.hpp"
#include "core/type_registry.hpp"

namespace ickpt::synth {

class ListElem final : public core::WithCheckpointInfo {
 public:
  static constexpr TypeId kTypeId = 101;
  static constexpr const char* kTypeName = "synth.ListElem";
  static constexpr int kMaxValues = 10;

  explicit ListElem(std::int32_t nvals = 1) : nvals_(clamp(nvals)) {}
  ListElem(core::RestoreTag, ObjectId id) : WithCheckpointInfo(id) {}

  [[nodiscard]] std::int32_t nvals() const noexcept { return nvals_; }
  [[nodiscard]] std::int32_t value(int i) const noexcept { return vals_[i]; }
  /// Contiguous value storage (for the fused writes in the residual code).
  [[nodiscard]] const std::int32_t* values_data() const noexcept {
    return vals_.data();
  }
  [[nodiscard]] ListElem* next() const noexcept { return next_; }

  void set_value(int i, std::int32_t v) noexcept {
    vals_[static_cast<std::size_t>(i)] = v;
    info_.set_modified();
  }

  void set_nvals(std::int32_t n) noexcept {
    nvals_ = clamp(n);
    info_.set_modified();
  }

  void set_next(ListElem* next) noexcept {
    next_ = next;
    info_.set_modified();
  }

  [[nodiscard]] TypeId type_id() const noexcept override { return kTypeId; }

  void record(io::DataWriter& d) const override {
    d.write_i32(nvals_);
    for (std::int32_t i = 0; i < nvals_; ++i)
      d.write_i32(vals_[static_cast<std::size_t>(i)]);
    core::write_child_id(d, next_);
  }

  void fold(core::Checkpoint& c) override {
    if (next_ != nullptr) c.checkpoint(*next_);
  }

  void restore_record(io::DataReader& d, core::Recovery& r) override {
    nvals_ = clamp(d.read_i32());
    for (std::int32_t i = 0; i < nvals_; ++i)
      vals_[static_cast<std::size_t>(i)] = d.read_i32();
    r.link(d, next_);
  }

 private:
  friend struct SynthShapes;

  static std::int32_t clamp(std::int32_t n) noexcept {
    return n < 0 ? 0 : (n > kMaxValues ? kMaxValues : n);
  }

  std::int32_t nvals_ = 1;
  std::array<std::int32_t, kMaxValues> vals_{};
  ListElem* next_ = nullptr;
};

/// One compound structure: five list heads (paper: "each containing five
/// linked lists"). The compound itself carries no scalar state; its record
/// is the five child ids.
class Compound final : public core::WithCheckpointInfo {
 public:
  static constexpr TypeId kTypeId = 102;
  static constexpr const char* kTypeName = "synth.Compound";
  static constexpr int kLists = 5;

  Compound() = default;
  Compound(core::RestoreTag, ObjectId id) : WithCheckpointInfo(id) {}

  [[nodiscard]] ListElem* list(int i) const noexcept {
    return lists_[static_cast<std::size_t>(i)];
  }

  void set_list(int i, ListElem* head) noexcept {
    lists_[static_cast<std::size_t>(i)] = head;
    info_.set_modified();
  }

  [[nodiscard]] TypeId type_id() const noexcept override { return kTypeId; }

  void record(io::DataWriter& d) const override {
    for (const ListElem* head : lists_) core::write_child_id(d, head);
  }

  void fold(core::Checkpoint& c) override {
    for (ListElem* head : lists_)
      if (head != nullptr) c.checkpoint(*head);
  }

  void restore_record(io::DataReader& d, core::Recovery& r) override {
    for (auto& head : lists_) r.link(d, head);
  }

 private:
  friend struct SynthShapes;

  std::array<ListElem*, kLists> lists_{};
};

/// Register the synthetic classes with a recovery registry.
void register_types(core::TypeRegistry& registry);

}  // namespace ickpt::synth
