// Shape descriptors ("specialization classes") for the synthetic structures,
// plus the modification-pattern builders for each of the paper's
// specialization experiments (Figs. 8-11, Table 2).
#pragma once

#include <memory>

#include "spec/compiler.hpp"
#include "spec/pattern.hpp"
#include "spec/shape.hpp"
#include "synth/structures.hpp"

namespace ickpt::synth {

/// Owns the shape descriptors of the synthetic classes. Build once, reuse
/// for every plan compilation.
struct SynthShapes {
  std::unique_ptr<spec::ShapeDescriptor> elem;
  std::unique_ptr<spec::ShapeDescriptor> compound;

  static SynthShapes make();
};

/// Which of the paper's specialization levels a pattern encodes.
enum class SpecLevel {
  /// Fig. 8: structure only — traversal inlined, every test kept.
  kStructure,
  /// Fig. 9: + only the first `modified_lists` lists may contain modified
  /// elements; the rest are not traversed at all.
  kModifiedLists,
  /// Fig. 10 / Table 2: + a modified element can only be the last element
  /// of a (possibly-modified) list; other elements lose their tests.
  kPositions,
};

/// Build the pattern for a compound of `list_length`-element lists where the
/// first `modified_lists` lists may contain modified elements and every
/// element records exactly `values_per_elem` ints.
///
/// All patterns fix the structure (list length asserted via absent-child
/// checks, value count fixed), mirroring the structural half of the paper's
/// specialization classes; `level` controls how much modification knowledge
/// is baked in.
spec::PatternNode make_synth_pattern(SpecLevel level, int list_length,
                                     int values_per_elem, int modified_lists);

}  // namespace ickpt::synth
