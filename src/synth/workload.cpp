#include "synth/workload.hpp"

#include "common/error.hpp"

namespace ickpt::synth {

SynthWorkload::SynthWorkload(core::Heap& heap, const SynthConfig& config)
    : config_(config), rng_(config.seed) {
  if (config_.list_length < 1) throw Error("SynthConfig: list_length < 1");
  if (config_.values_per_elem < 1 ||
      config_.values_per_elem > ListElem::kMaxValues)
    throw Error("SynthConfig: values_per_elem out of range");
  if (config_.modified_lists < 0 ||
      config_.modified_lists > Compound::kLists)
    throw Error("SynthConfig: modified_lists out of range");
  if (config_.percent_modified < 0 || config_.percent_modified > 100)
    throw Error("SynthConfig: percent_modified out of range");

  roots_.reserve(config_.num_structures);
  elems_.reserve(config_.num_structures * Compound::kLists *
                 static_cast<std::size_t>(config_.list_length));
  std::uniform_int_distribution<std::int32_t> value_dist(0, 1 << 20);

  for (std::size_t s = 0; s < config_.num_structures; ++s) {
    Compound* compound = heap.make<Compound>();
    for (int i = 0; i < Compound::kLists; ++i) {
      ListElem* head = nullptr;
      ListElem* tail = nullptr;
      for (int k = 0; k < config_.list_length; ++k) {
        ListElem* elem = heap.make<ListElem>(config_.values_per_elem);
        for (int v = 0; v < config_.values_per_elem; ++v)
          elem->set_value(v, value_dist(rng_));
        if (head == nullptr)
          head = elem;
        else
          tail->set_next(elem);
        tail = elem;
        elems_.push_back(elem);
      }
      compound->set_list(i, head);
    }
    roots_.push_back(compound);
    root_ptrs_.push_back(compound);
    root_bases_.push_back(compound);
  }
}

void SynthWorkload::reset_flags() noexcept {
  for (Compound* compound : roots_) compound->info().reset_modified();
  for (ListElem* elem : elems_) elem->info().reset_modified();
}

std::vector<bool> SynthWorkload::save_flags() const {
  std::vector<bool> flags;
  flags.reserve(roots_.size() + elems_.size());
  for (const Compound* compound : roots_)
    flags.push_back(compound->info().modified());
  for (const ListElem* elem : elems_)
    flags.push_back(elem->info().modified());
  return flags;
}

void SynthWorkload::restore_flags(const std::vector<bool>& flags) {
  if (flags.size() != roots_.size() + elems_.size())
    throw Error("restore_flags: snapshot size mismatch");
  std::size_t i = 0;
  auto apply = [&](core::CheckpointInfo& info) {
    if (flags[i++])
      info.set_modified();
    else
      info.reset_modified();
  };
  for (Compound* compound : roots_) apply(compound->info());
  for (ListElem* elem : elems_) apply(elem->info());
}

std::size_t SynthWorkload::mutate() {
  std::bernoulli_distribution dirty(
      static_cast<double>(config_.percent_modified) / 100.0);
  std::uniform_int_distribution<std::int32_t> value_dist(0, 1 << 20);
  std::size_t modified = 0;
  for (Compound* compound : roots_) {
    for (int i = 0; i < config_.modified_lists; ++i) {
      ListElem* elem = compound->list(i);
      if (config_.last_element_only) {
        while (elem->next() != nullptr) elem = elem->next();
        if (dirty(rng_)) {
          elem->set_value(0, value_dist(rng_));
          ++modified;
        }
      } else {
        for (; elem != nullptr; elem = elem->next()) {
          if (dirty(rng_)) {
            elem->set_value(0, value_dist(rng_));
            ++modified;
          }
        }
      }
    }
  }
  return modified;
}

std::size_t SynthWorkload::possibly_modified_population() const noexcept {
  std::size_t per_structure =
      config_.last_element_only
          ? static_cast<std::size_t>(config_.modified_lists)
          : static_cast<std::size_t>(config_.modified_lists) *
                static_cast<std::size_t>(config_.list_length);
  return per_structure * config_.num_structures;
}

std::size_t SynthWorkload::total_objects() const noexcept {
  return roots_.size() + elems_.size();
}

}  // namespace ickpt::synth
