// ickptctl — command-line operations on checkpoint logs.
//
//   ickptctl scan [--salvage] <log>
//                            frame-level integrity check (no type registry
//                            needed): frames, sizes, torn-tail status; with
//                            --salvage, resynchronizes past mid-log damage
//   ickptctl inspect <log>   decode records per frame (uses the built-in
//                            registry: the synth and analysis classes this
//                            repo ships; applications link their own
//                            registry and reuse core::inspect_log)
//   ickptctl verify <log>    full recovery dry-run: reports object count,
//                            roots, epoch, salvage notes — or the
//                            corruption error
//   ickptctl fsck [--repair] <log>
//                            offline chain validation without materializing
//                            objects: frame/CRC integrity, record payloads,
//                            epoch monotonicity, id referential closure,
//                            duplicate records, dangling children; --repair
//                            truncates a torn tail to the longest valid
//                            prefix (removed bytes saved to <log>.bak)
//   ickptctl compact <log>   rewrite the log to a single full checkpoint
//                            (crash-atomic: temp + fsync + rename)
#include <cstdio>
#include <cstring>
#include <string>

#include "analysis/attributes.hpp"
#include "common/error.hpp"
#include "core/inspect.hpp"
#include "core/manager.hpp"
#include "io/stable_storage.hpp"
#include "synth/structures.hpp"
#include "verify/fsck.hpp"

using namespace ickpt;

namespace {

core::TypeRegistry builtin_registry() {
  core::TypeRegistry registry;
  synth::register_types(registry);
  analysis::register_types(registry);
  return registry;
}

int cmd_scan(const char* path, bool salvage) {
  io::ScanResult scan =
      io::StableStorage::scan(path, {.salvage = salvage});
  std::size_t total = 0;
  for (const io::Frame& frame : scan.frames) {
    std::printf("seq %llu @ byte %llu: %zu bytes%s\n",
                (unsigned long long)frame.seq,
                (unsigned long long)frame.offset, frame.payload.size(),
                frame.resync ? " (resynchronized after corrupt region)" : "");
    total += frame.payload.size();
  }
  std::printf("%zu frame(s), %zu payload bytes, %s\n", scan.frames.size(),
              total,
              scan.clean
                  ? "clean"
                  : (scan.stop_reason + " at byte " +
                     std::to_string(scan.stop_offset))
                        .c_str());
  if (scan.regions_skipped > 0)
    std::printf("salvage: skipped %zu corrupt region(s), %llu byte(s)\n",
                scan.regions_skipped,
                (unsigned long long)scan.bytes_skipped);
  return scan.clean ? 0 : 2;
}

int cmd_inspect(const char* path) {
  auto registry = builtin_registry();
  auto report = core::inspect_log(path, registry);
  std::fputs(report.to_string().c_str(), stdout);
  return report.clean ? 0 : 2;
}

int cmd_verify(const char* path) {
  auto registry = builtin_registry();
  auto result = core::CheckpointManager::recover(path, registry);
  std::printf("recovered %zu object(s) from %zu checkpoint(s); %zu root(s); "
              "epoch %llu; log %s\n",
              result.state.by_id.size(), result.checkpoints_applied,
              result.state.roots.size(),
              (unsigned long long)result.state.epoch,
              result.log_clean ? "clean" : result.log_note.c_str());
  std::size_t dropped = result.state.prune_unreachable();
  if (dropped != 0)
    std::printf("note: %zu recovered object(s) unreachable from the roots "
                "(compact to drop them from the log)\n",
                dropped);
  return 0;
}

int cmd_fsck(const char* path, bool repair) {
  auto registry = builtin_registry();
  auto report = verify::fsck_log(path, registry);
  std::fputs(report.to_string().c_str(), stdout);
  if (!repair || report.clean()) return report.clean() ? 0 : 2;

  // Only frame-level tail/mid-log damage is repairable by truncation;
  // chain-level findings (dangling ids, type changes) are not.
  auto repaired = io::StableStorage::repair(path);
  if (repaired.repaired) {
    std::printf("repair: truncated %llu byte(s) (%s) to the longest valid "
                "prefix of %zu frame(s); removed bytes saved to %s\n",
                (unsigned long long)repaired.bytes_removed,
                repaired.reason.c_str(), repaired.frames_kept,
                repaired.bak_path.c_str());
  } else {
    std::printf("repair: no torn tail to truncate (damage is inside the "
                "frames, not after them)\n");
  }
  report = verify::fsck_log(path, registry);
  std::fputs(report.to_string().c_str(), stdout);
  return report.clean() ? 0 : 2;
}

int cmd_compact(const char* path) {
  auto registry = builtin_registry();
  auto result = core::CheckpointManager::compact(path, registry);
  std::printf("compacted %zu object(s): %zu -> %zu bytes\n", result.objects,
              result.bytes_before, result.bytes_after);
  return 0;
}

int usage() {
  std::fputs(
      "usage: ickptctl <command> [flags] <log-file>\n"
      "  scan [--salvage]   frame integrity only (no registry); --salvage\n"
      "                     resynchronizes past mid-log corruption\n"
      "  inspect            per-frame record breakdown (built-in classes)\n"
      "  verify             full recovery dry-run (salvages by default)\n"
      "  fsck [--repair]    offline chain validation: integrity, id closure,\n"
      "                     epochs (exit 0 clean, 2 on any error finding);\n"
      "                     --repair truncates a torn tail to the longest\n"
      "                     valid prefix, saving removed bytes to <log>.bak\n"
      "  compact            rewrite to a single full checkpoint\n",
      stderr);
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const char* command = argv[1];
  bool repair = false;
  bool salvage = false;
  const char* path = nullptr;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--repair") == 0) {
      repair = true;
    } else if (std::strcmp(argv[i], "--salvage") == 0) {
      salvage = true;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      return usage();
    }
  }
  if (path == nullptr) return usage();
  try {
    if (std::strcmp(command, "scan") == 0) return cmd_scan(path, salvage);
    if (std::strcmp(command, "inspect") == 0) return cmd_inspect(path);
    if (std::strcmp(command, "verify") == 0) return cmd_verify(path);
    if (std::strcmp(command, "fsck") == 0) return cmd_fsck(path, repair);
    if (std::strcmp(command, "compact") == 0) return cmd_compact(path);
    return usage();
  } catch (const Error& e) {
    std::fprintf(stderr, "ickptctl: %s\n", e.what());
    return 1;
  }
}
