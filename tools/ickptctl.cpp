// ickptctl — command-line operations on checkpoint logs.
//
//   ickptctl scan [--salvage] <log>
//                            frame-level integrity check (no type registry
//                            needed): frames, sizes, torn-tail status; with
//                            --salvage, resynchronizes past mid-log damage
//   ickptctl inspect <log>   decode records per frame (uses the built-in
//                            registry: the synth and analysis classes this
//                            repo ships; applications link their own
//                            registry and reuse core::inspect_log)
//   ickptctl verify <log>    full recovery dry-run: reports object count,
//                            roots, epoch, salvage notes — or the
//                            corruption error
//   ickptctl fsck [--repair] <log>
//                            offline chain validation without materializing
//                            objects: frame/CRC integrity, record payloads,
//                            epoch monotonicity, id referential closure,
//                            duplicate records, dangling children; --repair
//                            truncates a torn tail to the longest valid
//                            prefix (removed bytes saved to <log>.bak)
//   ickptctl compact [--retain] <log>
//                            rewrite the log (crash-atomic: temp + fsync +
//                            rename): by default to a single full checkpoint
//                            of the newest state; with --retain, to the
//                            binomial retention schedule — every retained
//                            epoch materialized as a full frame, declared in
//                            <log>.retain for fsck to audit
//   ickptctl history <log>   list every epoch recoverable from the log and
//                            its generation chain (the candidate set for
//                            recover --epoch), plus the declared retention
//                            schedule when a <log>.retain manifest exists
//   ickptctl recover --epoch <N> <log>
//                            time-travel dry-run: recover the state as of
//                            exactly epoch N (newest full <= N plus replayed
//                            deltas, walking the generation chain); a
//                            non-retained N fails naming the nearest
//                            retained neighbors
//   ickptctl health [--self-test] <log>
//                            generation-chain health: fsck every quarantined
//                            generation plus the live log, check the
//                            chain-level invariants (epoch partition, rebase
//                            fulls), and report whether the chain recovers;
//                            --self-test instead runs an in-process
//                            degrade/rotate/reheal scenario against the
//                            healing manager and exits 0/2

//   ickptctl stats [--json] [--self-test]
//                            run the built-in synthetic workload with the
//                            telemetry registry installed and print the
//                            resulting metrics (Prometheus text by default,
//                            --json for the JSON exposition); --self-test
//                            instead asserts the counters every layer must
//                            have fed and exits 0/2
//   ickptctl trace           same workload, but emit the collected spans as
//                            Chrome trace_event JSON (chrome://tracing,
//                            Perfetto)
//   ickptctl infer [--phase se|bt|et] [--self-test] [<pattern-file>]
//                            statically infer the modification pattern of an
//                            analysis phase from the bundled phase model's
//                            write sets (verify::infer_pattern), prove it
//                            with the pattern checker, compile it through
//                            the verifying gate, and report the accounting;
//                            with <pattern-file>, persist it via
//                            spec::pattern_io; --self-test asserts all three
//                            phases infer/verify/compile/round-trip cleanly
//                            and exits 0/2
//   ickptctl flightrec [--self-test] <log>
//                            print the epoch flight recorder dumped next to
//                            the log (<log>.flightrec — written automatically
//                            when a manager reaches terminal kFailed, or on
//                            demand via CheckpointManager::
//                            dump_flight_recorder); accepts the .flightrec
//                            file directly too; --self-test instead induces
//                            a rotation + rebase episode in-process, dumps
//                            the recorder, and checks the reloaded timeline
//                            reconstructs it (exits 0/2, no log file)
//   ickptctl extract [--self-test]
//                            run the whole write-set extraction proof
//                            offline: drive the real AnalysisEngine over the
//                            program_gen corpus with the WriteWitness
//                            installed, check witness ⊆ manifest, check the
//                            generated phase model against the manifests in
//                            both directions, then re-run the infer gate for
//                            every phase against that model; --self-test
//                            additionally fails on warnings (unexercised
//                            manifest entries)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/attributes.hpp"
#include "common/error.hpp"
#include "core/inspect.hpp"
#include "core/manager.hpp"
#include "core/retention.hpp"
#include "io/byte_sink.hpp"
#include "io/data_reader.hpp"
#include "io/data_writer.hpp"
#include "io/file_io.hpp"
#include "io/stable_storage.hpp"
#include "obs/flightrec.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "spec/adaptive.hpp"
#include "spec/pattern_io.hpp"
#include "synth/shapes.hpp"
#include "synth/structures.hpp"
#include "synth/workload.hpp"
#include "verify/extract/extract.hpp"
#include "verify/extract/model_gen.hpp"
#include "verify/fsck.hpp"
#include "verify/infer.hpp"

#ifdef __unix__
#include <unistd.h>
#endif

using namespace ickpt;

namespace {

core::TypeRegistry builtin_registry() {
  core::TypeRegistry registry;
  synth::register_types(registry);
  analysis::register_types(registry);
  return registry;
}

int cmd_scan(const char* path, bool salvage) {
  io::ScanResult scan =
      io::StableStorage::scan(path, {.salvage = salvage});
  std::size_t total = 0;
  for (const io::Frame& frame : scan.frames) {
    std::printf("seq %llu @ byte %llu: %zu bytes%s\n",
                (unsigned long long)frame.seq,
                (unsigned long long)frame.offset, frame.payload.size(),
                frame.resync ? " (resynchronized after corrupt region)" : "");
    total += frame.payload.size();
  }
  std::printf("%zu frame(s), %zu payload bytes, %s\n", scan.frames.size(),
              total,
              scan.clean
                  ? "clean"
                  : (scan.stop_reason + " at byte " +
                     std::to_string(scan.stop_offset))
                        .c_str());
  if (scan.regions_skipped > 0)
    std::printf("salvage: skipped %zu corrupt region(s), %llu byte(s)\n",
                scan.regions_skipped,
                (unsigned long long)scan.bytes_skipped);
  return scan.clean ? 0 : 2;
}

int cmd_inspect(const char* path) {
  auto registry = builtin_registry();
  auto report = core::inspect_log(path, registry);
  std::fputs(report.to_string().c_str(), stdout);
  return report.clean ? 0 : 2;
}

int cmd_verify(const char* path) {
  auto registry = builtin_registry();
  auto result = core::CheckpointManager::recover(path, registry);
  std::printf("recovered %zu object(s) from %zu checkpoint(s); %zu root(s); "
              "epoch %llu; log %s\n",
              result.state.by_id.size(), result.checkpoints_applied,
              result.state.roots.size(),
              (unsigned long long)result.state.epoch,
              result.log_clean ? "clean" : result.log_note.c_str());
  std::size_t dropped = result.state.prune_unreachable();
  if (dropped != 0)
    std::printf("note: %zu recovered object(s) unreachable from the roots "
                "(compact to drop them from the log)\n",
                dropped);
  return 0;
}

int cmd_fsck(const char* path, bool repair) {
  auto registry = builtin_registry();
  auto report = verify::fsck_log(path, registry);
  std::fputs(report.to_string().c_str(), stdout);
  if (!repair || report.clean()) return report.clean() ? 0 : 2;

  // Only frame-level tail/mid-log damage is repairable by truncation;
  // chain-level findings (dangling ids, type changes) are not.
  auto repaired = io::StableStorage::repair(path);
  if (repaired.repaired) {
    std::printf("repair: truncated %llu unreadable tail byte(s) (%s); "
                "%zu frame(s) kept; removed bytes saved to %s\n",
                (unsigned long long)repaired.bytes_removed,
                repaired.reason.c_str(), repaired.frames_kept,
                repaired.bak_path.c_str());
  } else {
    std::printf("repair: no unreadable tail to truncate (%s)\n",
                repaired.reason.empty() ? "log is clean"
                                        : repaired.reason.c_str());
  }
  report = verify::fsck_log(path, registry);
  std::fputs(report.to_string().c_str(), stdout);
  return report.clean() ? 0 : 2;
}

int cmd_compact(const char* path, bool retain) {
  auto registry = builtin_registry();
  core::CompactOptions copts;
  copts.policy = retain ? core::CompactPolicy::kBinomial
                        : core::CompactPolicy::kSquashAll;
  auto result = core::CheckpointManager::compact(path, registry, copts);
  std::printf("compacted %zu object(s): %zu -> %zu bytes\n", result.objects,
              result.bytes_before, result.bytes_after);
  if (retain) {
    std::printf("retained %zu epoch(s):", result.retained.size());
    for (Epoch e : result.retained)
      std::printf(" %llu", (unsigned long long)e);
    std::printf("\n");
    if (result.epochs_dropped > 0)
      std::printf("warning: %zu scheduled epoch(s) unrecoverable and "
                  "dropped\n",
                  result.epochs_dropped);
    std::printf("declared in %s\n",
                core::RetentionManifest::path_for(path).c_str());
  }
  return 0;
}

int cmd_history(const char* path) {
  const std::vector<core::HistoryEntry> entries =
      core::CheckpointManager::history(path);
  for (const core::HistoryEntry& e : entries) {
    std::printf("epoch %llu: %s, seq %llu, %zu byte(s), %s%s%s\n",
                (unsigned long long)e.epoch,
                e.mode == core::Mode::kFull ? "full" : "incremental",
                (unsigned long long)e.seq, e.bytes,
                e.live ? "live log" : e.file.c_str(),
                e.live ? "" : " (quarantined)",
                e.resync ? ", after corrupt region" : "");
  }
  std::printf("%zu epoch entr(ies) on the chain\n", entries.size());
  if (auto manifest = core::RetentionManifest::load(path)) {
    std::printf("declared retention schedule (newest %llu):",
                (unsigned long long)manifest->newest);
    for (Epoch e : manifest->epochs)
      std::printf(" %llu", (unsigned long long)e);
    std::printf("\n");
  }
  return entries.empty() ? 2 : 0;
}

int cmd_recover(const char* path, const char* epoch_flag) {
  if (epoch_flag == nullptr) {
    std::fprintf(stderr,
                 "ickptctl: recover needs --epoch <N> (use `verify` for the "
                 "newest state)\n");
    return 64;
  }
  char* end = nullptr;
  const unsigned long long target = std::strtoull(epoch_flag, &end, 10);
  if (end == epoch_flag || *end != '\0') {
    std::fprintf(stderr, "ickptctl: --epoch wants a number, got '%s'\n",
                 epoch_flag);
    return 64;
  }
  auto registry = builtin_registry();
  try {
    auto result = core::CheckpointManager::recover_to_epoch(
        path, registry, static_cast<Epoch>(target));
    std::printf("recovered epoch %llu from '%s': %zu object(s), %zu "
                "checkpoint(s) replayed (%zu delta(s) over the full), "
                "%zu root(s)%s%s\n",
                (unsigned long long)result.state.epoch,
                result.recovered_path.c_str(), result.state.by_id.size(),
                result.checkpoints_applied,
                result.checkpoints_applied > 0
                    ? result.checkpoints_applied - 1
                    : 0,
                result.state.roots.size(),
                result.log_clean ? "" : "; log ",
                result.log_clean ? "" : result.log_note.c_str());
    return 0;
  } catch (const core::EpochNotRetainedError& e) {
    std::fprintf(stderr, "ickptctl: %s\n", e.what());
    return 2;
  } catch (const CorruptionError& e) {
    std::fprintf(stderr, "ickptctl: %s\n", e.what());
    return 2;
  }
}

int cmd_health(const char* path) {
  auto registry = builtin_registry();
  verify::ChainReport chain = verify::fsck_chain(path, registry);
  std::fputs(chain.to_string().c_str(), stdout);
  try {
    auto recovered = core::CheckpointManager::recover(path, registry);
    std::printf("verdict: recoverable at epoch %llu from '%s' "
                "(%zu object(s), %zu file(s) tried)\n",
                (unsigned long long)recovered.state.epoch,
                recovered.recovered_path.c_str(),
                recovered.state.by_id.size(), recovered.generations_tried);
  } catch (const Error& e) {
    std::printf("verdict: NOT RECOVERABLE: %s\n", e.what());
    return 2;
  }
  return chain.clean() ? 0 : 2;
}

/// Remove a log and every artifact its generation chain may have left.
void remove_chain(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".bak").c_str());
  std::remove((path + ".compact").c_str());
  for (unsigned n = 1; n <= 16; ++n) {
    const std::string q = io::StableStorage::quarantine_path(path, n);
    std::remove(q.c_str());
    std::remove((q + ".bak").c_str());
  }
}

core::ManagerOptions heal_opts(io::FaultPolicy* fault) {
  core::ManagerOptions mopts;
  mopts.full_interval = 3;
  mopts.fault_policy = fault;
  mopts.retry.max_attempts = 2;
  mopts.retry.initial_backoff = std::chrono::microseconds{0};
  mopts.heal.enabled = true;
  mopts.heal.reheal_after = 2;
  mopts.heal.append_retries = 1;
  mopts.heal.rotate_attempts = 3;
  return mopts;
}

/// In-process exercise of the degradation ladder: a persistent-ENOSPC
/// rotation + reheal in synchronous mode, then an async poisoning +
/// degrade-to-sync + reheal — each followed by a chain fsck and a chain
/// recovery. Exits 0 when every checkpoint survives, 2 otherwise.
int health_self_test() {
#ifdef __unix__
  const std::string pid = std::to_string(::getpid());
#else
  const std::string pid = "0";
#endif
  int failures = 0;
  auto check = [&failures](bool ok, const char* what) {
    std::printf("%s %s\n", ok ? "ok  " : "FAIL", what);
    if (!ok) ++failures;
  };
  auto make_workload = [](core::Heap& heap) {
    synth::SynthConfig config;
    config.num_structures = 16;
    config.percent_modified = 50;
    return synth::SynthWorkload(heap, config);
  };
  auto registry = builtin_registry();

  // Calibrate: where does the log stand after two clean epochs? Faults are
  // then scripted to land inside the third epoch's frame.
  const std::string path = "/tmp/ickptctl-health-" + pid + ".log";
  remove_chain(path);
  std::uint64_t size_after_two = 0;
  {
    core::Heap heap;
    synth::SynthWorkload workload = make_workload(heap);
    core::CheckpointManager manager(path, heal_opts(nullptr));
    for (int i = 0; i < 2; ++i) {
      manager.take(workload.root_bases());
      workload.mutate();
    }
    size_after_two = io::read_file(path).size();
  }

  // Scenario 1 (sync): persistent ENOSPC at epoch 2 -> in-place retries
  // exhausted -> rotation + quarantine + rebase full -> degraded; two clean
  // epochs -> rehealed; chain fscks clean and recovers the newest epoch.
  remove_chain(path);
  {
    core::Heap heap;
    synth::SynthWorkload workload = make_workload(heap);
    // 6 transient decisions: initial append (3 attempts) + one in-place
    // retry (3 attempts); the rebase append writes below the trigger.
    io::ScriptedFaultPolicy fault(io::FaultKind::kTransient,
                                  size_after_two + 10, ENOSPC, 6);
    core::CheckpointManager manager(path, heal_opts(&fault));
    for (int i = 0; i < 3; ++i) {
      manager.take(workload.root_bases());
      workload.mutate();
    }
    check(manager.health() == core::Health::kDegraded,
          "persistent ENOSPC leaves the manager degraded, not dead");
    auto status = manager.health_status();
    check(status.rotations == 1, "exactly one rotation performed");
    check(io::file_exists(io::StableStorage::quarantine_path(path, 1)),
          "damaged generation preserved in quarantine");
    for (int i = 0; i < 2; ++i) {
      manager.take(workload.root_bases());
      workload.mutate();
    }
    check(manager.health() == core::Health::kHealthy,
          "rehealed after two clean epochs");
    check(manager.health_status().reheals == 1, "one reheal recorded");
    for (int i = 0; i < 2; ++i) {
      manager.take(workload.root_bases());
      workload.mutate();
    }
  }
  {
    verify::ChainReport chain = verify::fsck_chain(path, registry);
    check(chain.clean(), "generation chain fscks clean after rotation");
    check(chain.generations.size() == 2, "two generations on the chain");
    auto recovered = core::CheckpointManager::recover(path, registry);
    check(recovered.state.epoch == 6,
          "recovery reaches the newest epoch across the rotation");
    check(recovered.recovered_path == path,
          "recovery used the live (rebased) generation");
  }
  remove_chain(path);

  // Scenario 2 (async): a torn background append poisons the AsyncLog; the
  // manager degrades to synchronous durable writes instead of rethrowing
  // forever, rebases the chain, and re-arms async I/O after two clean
  // epochs.
  const std::string path2 = "/tmp/ickptctl-health-async-" + pid + ".log";
  remove_chain(path2);
  {
    core::Heap heap;
    synth::SynthWorkload workload = make_workload(heap);
    io::ScriptedFaultPolicy fault(io::FaultKind::kTornWrite,
                                  size_after_two + 30);
    core::ManagerOptions mopts = heal_opts(&fault);
    mopts.async_io = true;
    core::CheckpointManager manager(path2, mopts);
    bool degraded_seen = false;
    for (int i = 0; i < 7; ++i) {
      manager.take(workload.root_bases());
      workload.mutate();
      manager.flush();  // observe the poison deterministically
      degraded_seen =
          degraded_seen || manager.health() == core::Health::kDegraded;
    }
    check(degraded_seen, "async poisoning degraded to synchronous writes");
    check(manager.health() == core::Health::kHealthy,
          "rehealed back to async after two clean epochs");
    auto status = manager.health_status();
    check(status.async_armed, "async I/O re-armed by the reheal");
    check(status.lost_epochs == 1, "exactly the poisoned epoch was lost");
    check(status.rotations == 0, "poisoning healed without rotation");
  }
  {
    verify::ChainReport chain = verify::fsck_chain(path2, registry);
    check(chain.clean(), "log fscks clean after poison + rebase");
    auto recovered = core::CheckpointManager::recover(path2, registry);
    check(recovered.state.epoch == 6,
          "recovery reaches the newest epoch past the lost one");
  }
  remove_chain(path2);

  std::printf("health self-test: %d failure(s)\n", failures);
  return failures == 0 ? 0 : 2;
}

/// Load and print the flight-recorder image for a log (or the .flightrec
/// file itself). Exit 0 with events, 2 on an empty timeline.
int cmd_flightrec(const char* path) {
  std::string frpath = path;
  static constexpr const char kSuffix[] = ".flightrec";
  const std::size_t slen = sizeof(kSuffix) - 1;
  if (frpath.size() < slen ||
      frpath.compare(frpath.size() - slen, slen, kSuffix) != 0)
    frpath = obs::FlightRecorder::default_path(frpath);
  std::uint64_t total = 0;
  std::vector<obs::FlightEvent> events =
      obs::FlightRecorder::load_file(frpath, &total);
  std::printf("%s: %zu event(s) retained of %llu recorded\n", frpath.c_str(),
              events.size(), (unsigned long long)total);
  std::fputs(obs::FlightRecorder::render_timeline(events, total).c_str(),
             stdout);
  return events.empty() ? 2 : 0;
}

/// End-to-end exercise of the recorder: induce the same persistent-ENOSPC
/// rotation + rebase episode the health self-test uses, dump the recorder
/// on demand, reload the file, and check the timeline reconstructs the
/// episode in order.
int flightrec_self_test() {
#ifdef __unix__
  const std::string pid = std::to_string(::getpid());
#else
  const std::string pid = "0";
#endif
  int failures = 0;
  auto check = [&failures](bool ok, const char* what) {
    std::printf("%s %s\n", ok ? "ok  " : "FAIL", what);
    if (!ok) ++failures;
  };

  const std::string path = "/tmp/ickptctl-flightrec-" + pid + ".log";
  remove_chain(path);
  std::remove(obs::FlightRecorder::default_path(path).c_str());

  // Calibrate the fault offset exactly as health_self_test does.
  synth::SynthConfig config;
  config.num_structures = 16;
  config.percent_modified = 50;
  std::uint64_t size_after_two = 0;
  {
    core::Heap heap;
    synth::SynthWorkload workload(heap, config);
    core::CheckpointManager manager(path, heal_opts(nullptr));
    for (int i = 0; i < 2; ++i) {
      manager.take(workload.root_bases());
      workload.mutate();
    }
    size_after_two = io::read_file(path).size();
  }
  remove_chain(path);
  {
    core::Heap heap;
    synth::SynthWorkload workload(heap, config);
    io::ScriptedFaultPolicy fault(io::FaultKind::kTransient,
                                  size_after_two + 10, ENOSPC, 6);
    core::CheckpointManager manager(path, heal_opts(&fault));
    for (int i = 0; i < 5; ++i) {
      manager.take(workload.root_bases());
      workload.mutate();
    }
    check(manager.health() == core::Health::kHealthy,
          "episode ran: degraded by ENOSPC, rehealed by clean epochs");
    manager.dump_flight_recorder();
  }

  std::uint64_t total = 0;
  std::vector<obs::FlightEvent> events;
  try {
    events = obs::FlightRecorder::load_file(
        obs::FlightRecorder::default_path(path), &total);
  } catch (const Error& e) {
    std::printf("FAIL dump did not load: %s\n", e.what());
    remove_chain(path);
    std::remove(obs::FlightRecorder::default_path(path).c_str());
    return 2;
  }
  auto count = [&events](obs::FlightEventType type) {
    std::size_t n = 0;
    for (const obs::FlightEvent& e : events)
      if (e.type == type) ++n;
    return n;
  };
  using T = obs::FlightEventType;
  check(total == events.size(), "nothing overwritten in a short episode");
  check(count(T::kEpochBegin) == 5 && count(T::kEpochEnd) == 5,
        "all five epochs bracketed by begin/end events");
  check(count(T::kFault) >= 1, "injected faults recorded");
  check(count(T::kRetry) >= 1, "in-place retry recorded");
  check(count(T::kRotation) == 1 && count(T::kRebase) == 1,
        "exactly one rotation and one rebase on the timeline");
  check(count(T::kReheal) == 1, "reheal recorded");
  check(count(T::kDump) == 1, "the on-demand dump recorded itself");
  // Order: the rotation precedes the rebase precedes the reheal.
  std::size_t i_rot = events.size(), i_reb = events.size(),
              i_heal = events.size();
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].type == T::kRotation && i_rot == events.size()) i_rot = i;
    if (events[i].type == T::kRebase && i_reb == events.size()) i_reb = i;
    if (events[i].type == T::kReheal && i_heal == events.size()) i_heal = i;
  }
  check(i_rot < i_reb && i_reb < i_heal,
        "timeline orders rotation -> rebase -> reheal");
  std::fputs(obs::FlightRecorder::render_timeline(events, total).c_str(),
             stdout);

  remove_chain(path);
  std::remove(obs::FlightRecorder::default_path(path).c_str());
  std::printf("flightrec self-test: %d failure(s)\n", failures);
  return failures == 0 ? 0 : 2;
}

/// Exercise every instrumented layer in-process so stats/trace have real
/// numbers to show: checkpoint epochs through the async log onto a scratch
/// file, recovery and compaction of that file, and the spec pipeline
/// (observe -> infer -> specialize -> plan runs) over the same structures.
/// Must run with the obs registry/collector already installed — the manager
/// and executor capture their metric handles at construction.
void run_obs_workload() {
#ifdef __unix__
  const std::string pid = std::to_string(::getpid());
#else
  const std::string pid = "0";
#endif
  const std::string path = "/tmp/ickptctl-obs-" + pid + ".log";
  std::remove(path.c_str());

  core::Heap heap;
  synth::SynthConfig config;
  config.num_structures = 64;
  config.percent_modified = 25;
  synth::SynthWorkload workload(heap, config);

  {
    core::ManagerOptions mopts;
    mopts.full_interval = 4;
    mopts.async_io = true;
    core::CheckpointManager manager(path, mopts);
    for (int epoch = 0; epoch < 8; ++epoch) {
      manager.take(workload.root_bases());
      workload.mutate();
    }
    manager.flush();
  }

  auto registry = builtin_registry();
  (void)core::CheckpointManager::recover(path, registry);
  (void)core::CheckpointManager::compact(path, registry);

  synth::SynthShapes shapes = synth::SynthShapes::make();
  spec::AdaptiveCheckpointer::Options aopts;
  aopts.observe_epochs = 2;
  spec::AdaptiveCheckpointer adaptive(*shapes.compound, aopts);
  for (Epoch epoch = 0; epoch < 4; ++epoch) {
    io::VectorSink sink;
    io::DataWriter writer(sink);
    adaptive.checkpoint(
        writer, epoch,
        {workload.root_bases(), workload.root_ptrs()});
    writer.flush();
    workload.mutate();
  }

  std::remove(path.c_str());
}

int cmd_stats(bool self_test, bool json) {
  obs::Registry registry;
  obs::Registry::install(&registry);
  run_obs_workload();
  obs::Snapshot snap = registry.snapshot();
  obs::Registry::install(nullptr);

  if (!self_test) {
    std::fputs(json ? snap.to_json().c_str() : snap.to_prometheus().c_str(),
               stdout);
    return 0;
  }

  // The counters every layer must have fed after one workload pass. A zero
  // here means an instrumentation hook went dead — the test suite runs this
  // as a smoke check.
  static constexpr const char* kRequired[] = {
      "ickpt_checkpoints_total",          // checkpoint layer
      "ickpt_checkpoint_objects_total",
      "ickpt_checkpoint_bytes_total",
      "ickpt_async_appends_total",        // async log layer
      "ickpt_storage_appends_total",      // storage layer
      "ickpt_storage_bytes_written_total",
      "ickpt_storage_fsyncs_total",
      "ickpt_scans_total",
      "ickpt_scan_frames_total",
      "ickpt_recoveries_total",           // recovery
      "ickpt_recover_frames_total",
      "ickpt_recover_records_total",
      "ickpt_compacts_total",
      "ickpt_infer_observations_total",   // spec pipeline
      "ickpt_adaptive_specializations_total",
      "ickpt_plan_runs_total",
      "ickpt_plan_tests_performed_total",
  };
  int failures = 0;
  for (const char* name : kRequired) {
    const std::uint64_t value = snap.counter_sum(name);
    std::printf("%-40s %llu %s\n", name, (unsigned long long)value,
                value > 0 ? "ok" : "ZERO");
    if (value == 0) ++failures;
  }
  std::printf("self-test: %zu metric(s) checked, %d dead\n",
              sizeof(kRequired) / sizeof(kRequired[0]), failures);
  return failures == 0 ? 0 : 2;
}

std::size_t plan_tests(const spec::Plan& plan) {
  std::size_t tests = 0;
  for (const spec::Op& op : plan.ops)
    if (op.code == spec::OpCode::kTestSkip) ++tests;
  return tests;
}

/// Infer, prove, compile, and (optionally) persist the static pattern for
/// one phase. Returns 0, or 2 on any failed stage.
int infer_one_phase(analysis::Phase phase, const char* phase_name,
                    const char* out_path, bool verbose) {
  verify::StaticPattern inferred = verify::infer_attributes_pattern(phase);

  // The constructor is sound by design; run the independent checker anyway
  // so the tool reports proof, not trust.
  verify::Report report =
      verify::check_attributes_pattern(phase, inferred.pattern);

  auto shapes = analysis::AnalysisShapes::make();
  spec::CompileOptions copts;
  copts.verify_pattern = true;
  spec::Plan plan =
      spec::PlanCompiler(copts).compile(*shapes.attributes, inferred.pattern);
  const std::size_t elided = plan.nodes_covered - plan_tests(plan);

  if (verbose) {
    std::printf(
        "phase %s: %zu bound position(s) (%zu written, %zu clean), "
        "%zu unbound, %zu subtree(s) skipped\n",
        phase_name, inferred.bound_positions, inferred.written_positions,
        inferred.clean_positions, inferred.unbound_positions,
        inferred.skipped_subtrees);
    std::printf("  checker: %zu error(s), %zu warning(s), %zu note(s)\n",
                report.errors(), report.warnings(), report.notes());
    std::printf("  plan: %zu op(s), %zu node(s) covered, %zu test(s), "
                "%zu test(s) elided per run\n",
                plan.ops.size(), plan.nodes_covered, plan_tests(plan),
                elided);
  }
  if (report.errors() > 0) {
    std::fputs(report.to_string().c_str(), stdout);
    return 2;
  }

  if (out_path != nullptr) {
    io::VectorSink sink;
    {
      io::DataWriter writer(sink);
      spec::save_pattern(writer, inferred.pattern, *shapes.attributes);
      writer.flush();
    }
    io::write_file(out_path, sink.bytes());
    if (verbose)
      std::printf("  wrote %zu byte(s) to %s\n", sink.size(), out_path);
  }

  // Round-trip through pattern_io: the persisted form must reproduce a
  // pattern that compiles to the identical plan.
  io::VectorSink sink;
  {
    io::DataWriter writer(sink);
    spec::save_pattern(writer, inferred.pattern, *shapes.attributes);
    writer.flush();
  }
  io::DataReader reader(sink.bytes());
  spec::PatternNode loaded = spec::load_pattern(reader, *shapes.attributes);
  spec::Plan replan =
      spec::PlanCompiler(copts).compile(*shapes.attributes, loaded);
  if (replan.ops.size() != plan.ops.size() ||
      replan.nodes_covered != plan.nodes_covered) {
    std::printf("phase %s: round-tripped pattern compiled differently "
                "(%zu vs %zu op(s))\n",
                phase_name, replan.ops.size(), plan.ops.size());
    return 2;
  }
  if (elided == 0) {
    std::printf("phase %s: static pattern elided no tests\n", phase_name);
    return 2;
  }
  return 0;
}

int cmd_infer(const char* phase_flag, bool self_test, const char* out_path) {
  struct Named {
    const char* name;
    analysis::Phase phase;
  };
  static constexpr Named kPhases[] = {
      {"se", analysis::Phase::kSideEffect},
      {"bt", analysis::Phase::kBindingTime},
      {"et", analysis::Phase::kEvalTime},
  };

  if (self_test) {
    int failures = 0;
    for (const Named& named : kPhases)
      if (infer_one_phase(named.phase, named.name, nullptr, true) != 0)
        ++failures;
    std::printf("self-test: 3 phase(s) checked, %d failed\n", failures);
    return failures == 0 ? 0 : 2;
  }

  const char* name = phase_flag != nullptr ? phase_flag : "bt";
  for (const Named& named : kPhases)
    if (std::strcmp(named.name, name) == 0)
      return infer_one_phase(named.phase, named.name, out_path, true);
  std::fprintf(stderr, "ickptctl: unknown phase '%s' (se, bt, et)\n", name);
  return 64;
}

/// The three-way extraction proof, offline: manifests vs recorded witness
/// vs generated model, then the existing infer gate per phase so the output
/// shows the whole chain ending in compiled plans.
int cmd_extract(bool self_test) {
  verify::extract::CorpusOptions copts;
  auto manifests = verify::extract::engine_manifests();
  verify::extract::WitnessReport witness =
      verify::extract::record_witness(copts);

  std::printf("%-18s %-28s %-28s\n", "phase", "declared", "witnessed");
  for (const verify::extract::PhaseWitnessRow& row : witness.rows) {
    auto names = [](analysis::FieldSet set) {
      std::string out;
      for (analysis::AttrField field : set.fields()) {
        if (!out.empty()) out += ",";
        out += analysis::attr_field_name(field);
      }
      return out.empty() ? std::string("-") : out;
    };
    std::printf("%-18s %-28s %-28s\n", row.phase,
                names(row.declared).c_str(), names(row.witnessed).c_str());
  }
  std::printf("corpus: %zu program(s), %zu Attributes tree(s), "
              "%llu unattributed store(s)\n",
              witness.programs, witness.statements,
              (unsigned long long)witness.unattributed);

  verify::Report report = verify::extract::check_extraction(
      manifests, witness, verify::extract::generate_phase_model(manifests));
  std::fputs(report.to_string().c_str(), stdout);
  if (!report.clean()) return 2;
  if (self_test && report.warnings() > 0) {
    std::printf("self-test: %zu unexercised manifest entr(ies) — corpus "
                "does not prove the full declared footprint\n",
                report.warnings());
    return 2;
  }

  // The third arrow: the verified model feeds the same infer/check/compile
  // gate the tool's `infer` command runs.
  struct Named {
    const char* name;
    analysis::Phase phase;
  };
  static constexpr Named kPhases[] = {
      {"se", analysis::Phase::kSideEffect},
      {"bt", analysis::Phase::kBindingTime},
      {"et", analysis::Phase::kEvalTime},
  };
  int failures = 0;
  for (const Named& named : kPhases)
    if (infer_one_phase(named.phase, named.name, nullptr, self_test) != 0)
      ++failures;
  std::printf("extract: manifests, witness, and generated model agree; "
              "%d phase gate failure(s)\n",
              failures);
  return failures == 0 ? 0 : 2;
}

int cmd_trace() {
  obs::Registry registry;  // spans annotate from live counters; install both
  obs::Registry::install(&registry);
  obs::TraceCollector collector;
  obs::TraceCollector::install(&collector);
  run_obs_workload();
  std::vector<obs::TraceEvent> events = collector.drain();
  obs::TraceCollector::install(nullptr);
  obs::Registry::install(nullptr);
  std::fputs(obs::TraceCollector::to_chrome_json(events).c_str(), stdout);
  return events.empty() ? 2 : 0;
}

int usage() {
  std::fputs(
      "usage: ickptctl <command> [flags] <log-file>\n"
      "  scan [--salvage]   frame integrity only (no registry); --salvage\n"
      "                     resynchronizes past mid-log corruption\n"
      "  inspect            per-frame record breakdown (built-in classes)\n"
      "  verify             full recovery dry-run (salvages by default)\n"
      "  fsck [--repair]    offline chain validation: integrity, id closure,\n"
      "                     epochs (exit 0 clean, 2 on any error finding);\n"
      "                     --repair truncates a torn tail to the longest\n"
      "                     valid prefix, saving removed bytes to <log>.bak\n"
      "  compact [--retain] rewrite to a single full checkpoint; with\n"
      "                     --retain, to the binomial retention schedule\n"
      "                     (O(log n) full frames, declared in <log>.retain)\n"
      "  history            list every epoch on the log + generation chain\n"
      "                     (the candidates for recover --epoch) and the\n"
      "                     declared retention schedule, if any\n"
      "  recover --epoch <N>\n"
      "                     time-travel dry-run to exactly epoch N; a\n"
      "                     non-retained N exits 2 naming the nearest\n"
      "                     retained neighbors\n"
      "  health [--self-test]\n"
      "                     fsck the whole generation chain (quarantined\n"
      "                     predecessors + live log), check the chain-level\n"
      "                     invariants, and report whether it recovers (exit\n"
      "                     0 clean+recoverable, 2 otherwise); --self-test\n"
      "                     runs an in-process degrade/rotate/reheal exercise\n"
      "                     instead and takes no log file\n"
      "  stats [--json] [--self-test]\n"
      "                     run the built-in synth workload with telemetry\n"
      "                     installed and print the metrics (Prometheus text,\n"
      "                     or JSON with --json); --self-test asserts every\n"
      "                     layer fed its counters (exit 0 ok, 2 on a dead\n"
      "                     metric). Takes no log file.\n"
      "  trace              same workload; emit collected spans as Chrome\n"
      "                     trace_event JSON (chrome://tracing / Perfetto).\n"
      "                     Takes no log file.\n"
      "  flightrec [--self-test]\n"
      "                     print the epoch flight recorder dumped next to\n"
      "                     the log (<log>.flightrec; also accepts that file\n"
      "                     directly). Exit 0 with events, 2 on an empty\n"
      "                     timeline. --self-test induces a rotation+rebase\n"
      "                     episode in-process and checks the reloaded\n"
      "                     timeline reconstructs it; takes no log file.\n"
      "  infer [--phase se|bt|et] [--self-test] [<pattern-file>]\n"
      "                     statically infer the phase's modification pattern\n"
      "                     from the bundled model's write sets, prove it with\n"
      "                     the checker, compile it through the verifying\n"
      "                     gate; optional <pattern-file> receives the\n"
      "                     serialized pattern. --self-test checks all three\n"
      "                     phases (exit 0 ok, 2 on failure).\n"
      "  extract [--self-test]\n"
      "                     drive the real analysis engine over the bundled\n"
      "                     corpus with the write witness installed and prove\n"
      "                     manifests == witness == generated model, then run\n"
      "                     the infer gate per phase against that model;\n"
      "                     --self-test also fails on unexercised manifest\n"
      "                     entries (exit 0 ok, 2 on failure). Takes no log\n"
      "                     file.\n",
      stderr);
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const char* command = argv[1];
  bool repair = false;
  bool salvage = false;
  bool self_test = false;
  bool json = false;
  bool retain = false;
  const char* phase = nullptr;
  const char* epoch = nullptr;
  const char* path = nullptr;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--repair") == 0) {
      repair = true;
    } else if (std::strcmp(argv[i], "--salvage") == 0) {
      salvage = true;
    } else if (std::strcmp(argv[i], "--self-test") == 0) {
      self_test = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--retain") == 0) {
      retain = true;
    } else if (std::strcmp(argv[i], "--phase") == 0 && i + 1 < argc) {
      phase = argv[++i];
    } else if (std::strcmp(argv[i], "--epoch") == 0 && i + 1 < argc) {
      epoch = argv[++i];
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      return usage();
    }
  }
  try {
    // stats/trace/infer run against built-in models; the path is optional
    // (infer) or absent (stats, trace).
    if (std::strcmp(command, "stats") == 0) return cmd_stats(self_test, json);
    if (std::strcmp(command, "trace") == 0) return cmd_trace();
    if (std::strcmp(command, "infer") == 0)
      return cmd_infer(phase, self_test, path);
    if (std::strcmp(command, "extract") == 0) return cmd_extract(self_test);
    if (std::strcmp(command, "health") == 0 && self_test)
      return health_self_test();
    if (std::strcmp(command, "flightrec") == 0 && self_test)
      return flightrec_self_test();
    if (path == nullptr) return usage();
    if (std::strcmp(command, "flightrec") == 0) return cmd_flightrec(path);
    if (std::strcmp(command, "health") == 0) return cmd_health(path);
    if (std::strcmp(command, "scan") == 0) return cmd_scan(path, salvage);
    if (std::strcmp(command, "inspect") == 0) return cmd_inspect(path);
    if (std::strcmp(command, "verify") == 0) return cmd_verify(path);
    if (std::strcmp(command, "fsck") == 0) return cmd_fsck(path, repair);
    if (std::strcmp(command, "compact") == 0)
      return cmd_compact(path, retain);
    if (std::strcmp(command, "history") == 0) return cmd_history(path);
    if (std::strcmp(command, "recover") == 0)
      return cmd_recover(path, epoch);
    return usage();
  } catch (const Error& e) {
    std::fprintf(stderr, "ickptctl: %s\n", e.what());
    return 1;
  }
}
