// ickptctl — command-line operations on checkpoint logs.
//
//   ickptctl scan <log>      frame-level integrity check (no type registry
//                            needed): frames, sizes, torn-tail status
//   ickptctl inspect <log>   decode records per frame (uses the built-in
//                            registry: the synth and analysis classes this
//                            repo ships; applications link their own
//                            registry and reuse core::inspect_log)
//   ickptctl verify <log>    full recovery dry-run: reports object count,
//                            roots, epoch — or the corruption error
//   ickptctl fsck <log>      offline chain validation without materializing
//                            objects: frame/CRC integrity, record payloads,
//                            epoch monotonicity, id referential closure,
//                            duplicate records, dangling children
//   ickptctl compact <log>   rewrite the log to a single full checkpoint
#include <cstdio>
#include <cstring>

#include "analysis/attributes.hpp"
#include "common/error.hpp"
#include "core/inspect.hpp"
#include "core/manager.hpp"
#include "io/stable_storage.hpp"
#include "synth/structures.hpp"
#include "verify/fsck.hpp"

using namespace ickpt;

namespace {

core::TypeRegistry builtin_registry() {
  core::TypeRegistry registry;
  synth::register_types(registry);
  analysis::register_types(registry);
  return registry;
}

int cmd_scan(const char* path) {
  io::ScanResult scan = io::StableStorage::scan(path);
  std::size_t total = 0;
  for (const io::Frame& frame : scan.frames) {
    std::printf("seq %llu: %zu bytes\n", (unsigned long long)frame.seq,
                frame.payload.size());
    total += frame.payload.size();
  }
  std::printf("%zu frame(s), %zu payload bytes, %s\n", scan.frames.size(),
              total,
              scan.clean ? "clean"
                         : ("tail dropped: " + scan.stop_reason).c_str());
  return scan.clean ? 0 : 2;
}

int cmd_inspect(const char* path) {
  auto registry = builtin_registry();
  auto report = core::inspect_log(path, registry);
  std::fputs(report.to_string().c_str(), stdout);
  return report.clean ? 0 : 2;
}

int cmd_verify(const char* path) {
  auto registry = builtin_registry();
  auto result = core::CheckpointManager::recover(path, registry);
  std::printf("recovered %zu object(s) from %zu checkpoint(s); %zu root(s); "
              "epoch %llu; log %s\n",
              result.state.by_id.size(), result.checkpoints_applied,
              result.state.roots.size(),
              (unsigned long long)result.state.epoch,
              result.log_clean ? "clean"
                               : ("tail dropped: " + result.log_note).c_str());
  std::size_t dropped = result.state.prune_unreachable();
  if (dropped != 0)
    std::printf("note: %zu recovered object(s) unreachable from the roots "
                "(compact to drop them from the log)\n",
                dropped);
  return 0;
}

int cmd_fsck(const char* path) {
  auto registry = builtin_registry();
  auto report = verify::fsck_log(path, registry);
  std::fputs(report.to_string().c_str(), stdout);
  return report.clean() ? 0 : 2;
}

int cmd_compact(const char* path) {
  auto registry = builtin_registry();
  auto result = core::CheckpointManager::compact(path, registry);
  std::printf("compacted %zu object(s): %zu -> %zu bytes\n", result.objects,
              result.bytes_before, result.bytes_after);
  return 0;
}

int usage() {
  std::fputs(
      "usage: ickptctl <scan|inspect|verify|fsck|compact> <log-file>\n"
      "  scan     frame integrity only (no registry)\n"
      "  inspect  per-frame record breakdown (built-in classes)\n"
      "  verify   full recovery dry-run\n"
      "  fsck     offline chain validation: integrity, id closure, epochs\n"
      "           (exit 0 clean, 2 on any error-severity finding)\n"
      "  compact  rewrite to a single full checkpoint\n",
      stderr);
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) return usage();
  try {
    if (std::strcmp(argv[1], "scan") == 0) return cmd_scan(argv[2]);
    if (std::strcmp(argv[1], "inspect") == 0) return cmd_inspect(argv[2]);
    if (std::strcmp(argv[1], "verify") == 0) return cmd_verify(argv[2]);
    if (std::strcmp(argv[1], "fsck") == 0) return cmd_fsck(argv[2]);
    if (std::strcmp(argv[1], "compact") == 0) return cmd_compact(argv[2]);
    return usage();
  } catch (const Error& e) {
    std::fprintf(stderr, "ickptctl: %s\n", e.what());
    return 1;
  }
}
