// Capture profiler harness: where does a checkpoint's time actually go?
//
// Grid: engine in {serial, parallel x threads {2,4,8}} x structures in
// {N/4, N} x mode {full, incr@25%}. Every grid point runs the profiled
// capture path (CheckpointOptions/ParallelOptions::profile) and reports the
// per-stage attribution of the final rep next to the usual timing stats:
// root walk, dirty test, serialize, claim arbitration, merge — plus the
// contention counters (claim-table lock misses, steal attempts/failures,
// visited-set probes). Rows land in BENCH_profile.json (override with
// ICKPT_BENCH_JSON) with the raw per-stage nanoseconds.
//
// The harness also certifies the profiler itself: stage times are
// attributed with a mark-based scheme whose residual (root walk) makes the
// stages sum to the busy time by construction, so `sum(stage_ns)` must land
// within 10% of `busy_ns` for every row — serial and sharded. `--smoke`
// runs a reduced grid, enforces that invariant, re-parses the emitted JSON
// with an independent parser, and exits non-zero on any violation; the test
// suite runs it as the `profile`-labeled smoke test.
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/parallel_checkpoint.hpp"
#include "obs/profile.hpp"
#include "tests/json_lite.hpp"

using namespace ickpt;
using namespace ickpt::bench;

namespace {

struct ProfiledRun {
  TimingStats stats;
  std::size_t bytes = 0;
  /// Attribution of the final rep (one epoch's capture; the profile is
  /// reset per rep so stages never mix epochs).
  obs::CaptureProfile profile;
};

/// threads == 0 runs the serial generic driver; otherwise the sharded one.
ProfiledRun measure_profiled(synth::SynthWorkload& workload, core::Mode mode,
                             unsigned threads,
                             const std::vector<bool>& flags) {
  ProfiledRun out;
  auto body = [&] {
    out.profile.reset();
    io::CountingSink sink;
    io::DataWriter writer(sink);
    if (threads == 0) {
      core::CheckpointOptions opts;
      opts.mode = mode;
      opts.profile = &out.profile;
      core::Checkpoint::run(writer, 0, workload.root_bases(), opts);
    } else {
      core::ParallelOptions opts;
      opts.mode = mode;
      opts.threads = threads;
      opts.profile = &out.profile;
      core::ParallelCheckpoint::run(writer, 0, workload.root_bases(), opts);
    }
    writer.flush();
    out.bytes = sink.count();
  };
  out.stats = time_stats([&] { workload.restore_flags(flags); }, body);
  return out;
}

std::string fmt_pct(std::uint64_t part, std::uint64_t whole) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%",
                whole == 0 ? 0.0 : 100.0 * static_cast<double>(part) /
                                       static_cast<double>(whole));
  return buf;
}

/// BENCH_profile.json rows carry the raw attribution, so the fixed-schema
/// JsonReport does not fit; this emitter writes the same array-of-objects
/// shape with per-stage fields.
class ProfileReport {
 public:
  void add(const std::string& config, const ProfiledRun& run) {
    using P = obs::CaptureProfile;
    const P& p = run.profile;
    std::string row = "  {\"bench\": \"profile\", \"config\": \"" + config +
                      "\"";
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  ", \"best_s\": %.9g, \"p50_s\": %.9g, \"p95_s\": %.9g, "
                  "\"bytes\": %zu",
                  run.stats.best, run.stats.p50, run.stats.p95, run.bytes);
    row += buf;
    auto u64 = [&row, &buf](const char* key, std::uint64_t v) {
      std::snprintf(buf, sizeof(buf), ", \"%s\": %llu", key,
                    (unsigned long long)v);
      row += buf;
    };
    for (int s = 0; s < P::kStageCount; ++s)
      u64((std::string(P::stage_name(static_cast<P::Stage>(s))) + "_ns")
              .c_str(),
          p.stage_ns[s]);
    u64("busy_ns", p.busy_ns);
    u64("stage_sum_ns", p.stage_total_ns());
    u64("objects", p.objects);
    u64("records", p.records);
    u64("shards", p.shards);
    u64("visited_probes", p.visited_probes);
    u64("claim_cas_retries", p.claim_cas_retries);
    u64("steal_attempts", p.steal_attempts);
    u64("steal_failures", p.steal_failures);
    u64("shard_sink_bytes", p.shard_sink_bytes);
    u64("direct_stream_bytes", p.direct_stream_bytes);
    u64("merge_buffered_peak_bytes", p.merge_buffered_peak_bytes);
    row += "}";
    rows_.push_back(row);
  }

  [[nodiscard]] std::string render() const {
    std::string out = "[\n";
    for (std::size_t i = 0; i < rows_.size(); ++i)
      out += rows_[i] + (i + 1 < rows_.size() ? ",\n" : "\n");
    out += "]\n";
    return out;
  }

  [[nodiscard]] std::size_t size() const { return rows_.size(); }

 private:
  std::vector<std::string> rows_;
};

/// The profiler's core contract: the mark-based attribution makes the
/// stages account for the busy time. 10% slack absorbs clock-read overhead
/// between marks; anything beyond that means a stage went unattributed.
bool check_sum_invariant(const char* config, const obs::CaptureProfile& p) {
  const auto sum = static_cast<double>(p.stage_total_ns());
  const auto busy = static_cast<double>(p.busy_ns);
  if (busy <= 0) {
    std::printf("FAIL %s: busy_ns == 0 (profiler never engaged)\n", config);
    return false;
  }
  const double ratio = sum / busy;
  if (std::fabs(ratio - 1.0) > 0.10) {
    std::printf("FAIL %s: stage sum %.0fns vs busy %.0fns (ratio %.3f, "
                "tolerance 10%%)\n",
                config, sum, busy, ratio);
    return false;
  }
  return true;
}

/// Re-parse the emitted report with the independent json_lite parser and
/// check every row carries the attribution schema.
bool check_report_json(const std::string& text, std::size_t expect_rows) {
  try {
    testjson::ValuePtr doc = testjson::parse(text);
    if (!doc->is_array() || doc->array.size() != expect_rows) {
      std::printf("FAIL report: expected an array of %zu row(s)\n",
                  expect_rows);
      return false;
    }
    using P = obs::CaptureProfile;
    for (const testjson::ValuePtr& row : doc->array) {
      (void)row->at("config").str();
      (void)row->at("best_s").num();
      for (int s = 0; s < P::kStageCount; ++s)
        (void)row->at(std::string(P::stage_name(static_cast<P::Stage>(s))) +
                      "_ns")
            .num();
      (void)row->at("busy_ns").num();
      (void)row->at("stage_sum_ns").num();
    }
    return true;
  } catch (const std::exception& e) {
    std::printf("FAIL report: %s\n", e.what());
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  if (smoke) {
    // A ctest-sized run: small graph, few reps, one thread count — enough
    // to engage both engines and every stage the capture path can hit.
    setenv("ICKPT_BENCH_STRUCTURES", "2000", /*overwrite=*/0);
    setenv("ICKPT_BENCH_REPS", "3", /*overwrite=*/0);
  }
  setenv("ICKPT_BENCH_JSON", "BENCH_profile.json", /*overwrite=*/0);

  print_header("Capture profiler: per-stage attribution, serial vs sharded");
  std::printf("structures=%zu reps=%d%s\n\n", bench_structures(), bench_reps(),
              smoke ? " (smoke)" : "");
  print_row({"structs", "mode", "engine", "best", "walk", "dirty", "serlz",
             "claim", "merge", "mwait", "sum/busy", "casretry"},
            10);

  ProfileReport report;
  int failures = 0;
  const std::vector<unsigned> thread_counts =
      smoke ? std::vector<unsigned>{2} : std::vector<unsigned>{2, 4, 8};

  for (std::size_t structures :
       {bench_structures() / 4, bench_structures()}) {
    if (structures == 0) continue;
    synth::SynthConfig config;
    config.num_structures = structures;
    core::Heap heap;
    synth::SynthWorkload workload(heap, config);

    struct Case {
      core::Mode mode;
      const char* name;
      int percent;
    };
    for (const Case& c : {Case{core::Mode::kFull, "full", 100},
                          Case{core::Mode::kIncremental, "incr", 25}}) {
      workload.reset_flags();
      config.percent_modified = c.percent;
      workload.mutate();
      auto flags = workload.save_flags();

      std::vector<unsigned> engines = {0u};
      engines.insert(engines.end(), thread_counts.begin(),
                     thread_counts.end());
      for (unsigned threads : engines) {
        ProfiledRun run = measure_profiled(workload, c.mode, threads, flags);
        using P = obs::CaptureProfile;
        const P& p = run.profile;
        const std::string engine =
            threads == 0 ? "serial" : "par-" + std::to_string(threads);
        const std::string cfg = "structures=" + std::to_string(structures) +
                                " mode=" + c.name + " engine=" + engine;
        char ratio[16];
        std::snprintf(ratio, sizeof(ratio), "%.3f",
                      p.busy_ns == 0
                          ? 0.0
                          : static_cast<double>(p.stage_total_ns()) /
                                static_cast<double>(p.busy_ns));
        print_row({std::to_string(structures), c.name, engine,
                   fmt_ms(run.stats.best),
                   fmt_pct(p.stage_ns[P::kRootWalk], p.busy_ns),
                   fmt_pct(p.stage_ns[P::kDirtyTest], p.busy_ns),
                   fmt_pct(p.stage_ns[P::kSerialize], p.busy_ns),
                   fmt_pct(p.stage_ns[P::kClaim], p.busy_ns),
                   fmt_pct(p.stage_ns[P::kMerge], p.busy_ns),
                   fmt_pct(p.stage_ns[P::kMergeWait], p.busy_ns), ratio,
                   std::to_string(p.claim_cas_retries)},
                  10);
        report.add(cfg, run);
        if (!check_sum_invariant(cfg.c_str(), p)) ++failures;
      }
    }
  }

  const std::string text = report.render();
  const char* path = std::getenv("ICKPT_BENCH_JSON");
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fputs(text.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote %zu row(s) to %s\n", report.size(), path);
  } else {
    std::printf("FAIL could not write %s\n", path);
    ++failures;
  }
  if (!check_report_json(text, report.size())) ++failures;

  if (smoke)
    std::printf("smoke: %zu row(s), %d failure(s)\n", report.size(),
                failures);
  else
    std::printf(
        "\nexpected shape: serialize dominates full mode; the dirty test's\n"
        "share grows in incremental mode; claim/merge stay small; sum/busy\n"
        "within 1.0 +- 0.10 for every row (the profiler's own invariant).\n");
  return failures == 0 ? 0 : 1;
}
