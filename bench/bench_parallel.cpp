// Sharded parallel capture: scaling curve (threads x graph size).
//
// Grid: worker threads in {1,2,4,8} x structures in {N/4, N} (N from
// ICKPT_BENCH_STRUCTURES, default the paper's 20,000), full mode plus an
// incremental epoch at 25% modified. Each grid point is compared against
// the serial generic driver on identical dirty state; `threads=1` goes
// through ParallelCheckpoint's serial delegation, so its row doubles as the
// "no regression at one thread" check. Speedup is serial_best /
// parallel_best. Rows land in BENCH_parallel.json unless ICKPT_BENCH_JSON
// overrides the path.
//
// Read the speedup column against the hardware: on a single-core machine
// every thread count timeslices one core and the curve is flat at ~1x (plus
// sharding overhead) — the merge stays cheap either way, which is the part
// this harness can always certify.
//
// `--smoke` runs a reduced grid as a ctest regression gate: on a box with
// >= 4 hardware threads, threads=4 best wall time must be <= serial best
// (the "parallel capture actually wins" contract, with a small noise
// allowance); below 4 cores that comparison is timeslicing noise, so the
// gate reports a skip and exits clean.
#include <string>
#include <thread>

#include "bench/bench_util.hpp"
#include "core/parallel_checkpoint.hpp"

using namespace ickpt;
using namespace ickpt::bench;

namespace {

Measured measure_parallel(synth::SynthWorkload& workload, core::Mode mode,
                          unsigned threads, const std::vector<bool>& flags) {
  Measured m;
  auto body = [&] {
    io::CountingSink sink;
    io::DataWriter writer(sink);
    core::ParallelOptions opts;
    opts.mode = mode;
    opts.threads = threads;
    core::ParallelCheckpoint::run(writer, 0, workload.root_bases(), opts);
    writer.flush();
    m.bytes = sink.count();
  };
  m.stats = time_stats([&] { workload.restore_flags(flags); }, body);
  m.seconds = m.stats.best;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  if (smoke) {
    setenv("ICKPT_BENCH_STRUCTURES", "4000", /*overwrite=*/0);
    setenv("ICKPT_BENCH_REPS", "3", /*overwrite=*/0);
  }
  // This bench gets its own report file so the scaling curve is not mixed
  // into BENCH_obs.json (the shared default).
  setenv("ICKPT_BENCH_JSON", "BENCH_parallel.json", /*overwrite=*/0);

  print_header("Sharded parallel capture: threads x graph size");
  std::printf("structures=%zu reps=%d hardware_threads=%u\n\n",
              bench_structures(), bench_reps(),
              std::thread::hardware_concurrency());
  print_row({"structs", "mode", "threads", "serial", "parallel", "par-p50",
             "par-p95", "ckpt size", "speedup"});

  // The smoke gate only means something when 4 workers get 4 real cores;
  // best-of-reps absorbs most scheduler noise, the factor absorbs the rest.
  const bool gated = smoke && std::thread::hardware_concurrency() >= 4;
  constexpr double kNoiseFactor = 1.05;
  int gate_failures = 0;

  for (std::size_t structures :
       {bench_structures() / 4, bench_structures()}) {
    if (structures == 0) continue;
    synth::SynthConfig config;
    config.num_structures = structures;
    core::Heap heap;
    synth::SynthWorkload workload(heap, config);

    struct Case {
      core::Mode mode;
      const char* name;
      int percent;
    };
    for (const Case& c : {Case{core::Mode::kFull, "full", 100},
                          Case{core::Mode::kIncremental, "incr", 25}}) {
      workload.reset_flags();
      config.percent_modified = c.percent;
      workload.mutate();
      auto flags = workload.save_flags();

      Measured serial = measure_generic(workload, c.mode, flags);
      const std::string grid_base =
          "structures=" + std::to_string(structures) + " mode=" + c.name;
      JsonReport::instance().add("parallel", grid_base + " engine=serial",
                                 serial.stats, serial.bytes);

      for (unsigned threads : {1u, 2u, 4u, 8u}) {
        Measured par = measure_parallel(workload, c.mode, threads, flags);
        print_row({std::to_string(structures), c.name,
                   std::to_string(threads), fmt_ms(serial.seconds),
                   fmt_ms(par.seconds), fmt_ms(par.stats.p50),
                   fmt_ms(par.stats.p95), fmt_mb(par.bytes),
                   fmt_x(serial.seconds / par.seconds)});
        JsonReport::instance().add(
            "parallel",
            grid_base + " engine=parallel threads=" + std::to_string(threads),
            par.stats, par.bytes);
        if (gated && threads == 4 &&
            par.seconds > serial.seconds * kNoiseFactor) {
          std::printf("GATE threads=4 %s: parallel %.6fs vs serial %.6fs\n",
                      grid_base.c_str(), par.seconds, serial.seconds);
          ++gate_failures;
        }
      }
    }
  }
  if (smoke) {
    if (!gated)
      std::printf("\nsmoke: <4 hardware threads (%u) — threads=4 <= serial "
                  "gate skipped\n",
                  std::thread::hardware_concurrency());
    else
      std::printf("\nsmoke: threads=4 <= serial gate %s (%d failure(s))\n",
                  gate_failures == 0 ? "passed" : "FAILED", gate_failures);
    return gate_failures == 0 ? 0 : 1;
  }
  std::printf(
      "\nexpected shape: speedup approaches the smaller of the thread count\n"
      "and the machine's core count; threads=1 must sit within noise of the\n"
      "serial driver (it delegates to it).\n");
  return 0;
}
