// Table 1: checkpointing the program analysis engine (the realistic
// application). A checkpoint is taken at the end of every fixpoint
// iteration of the binding-time and evaluation-time phases; we report, per
// phase: checkpoint sizes (min/max over iterations) and construction time
// for full, incremental, and specialized-incremental checkpointing, plus
// the traversal-time row (cost of the walk alone, the bound on what
// specialization can remove).
//
// The analyzed input is the generated ~750-line image-manipulation program
// (set ICKPT_BENCH_STAGES to scale it up).
#include <functional>

#include "analysis/engine.hpp"
#include "analysis/parser.hpp"
#include "analysis/program_gen.hpp"
#include "analysis/residual.hpp"
#include "analysis/shapes.hpp"
#include "bench/bench_util.hpp"
#include "spec/compiler.hpp"

using namespace ickpt;
using namespace ickpt::bench;

namespace {

struct Accum {
  std::size_t min_bytes = SIZE_MAX;
  std::size_t max_bytes = 0;
  double total_seconds = 0;
  int iterations = 0;

  void add(const Measured& m) {
    min_bytes = std::min(min_bytes, m.bytes);
    max_bytes = std::max(max_bytes, m.bytes);
    total_seconds += m.seconds;
    ++iterations;
  }
  [[nodiscard]] double avg() const {
    return iterations == 0 ? 0 : total_seconds / iterations;
  }
};

struct PhaseReport {
  Accum full;
  Accum incremental;
  Accum specialized;
  double traversal_generic = 0;
  double traversal_plan = 0;
};

Measured measure_attrs_generic(analysis::AnalysisEngine& engine,
                               core::Mode mode,
                               const std::vector<bool>& flags) {
  Measured m;
  m.seconds = time_best([&] { engine.restore_flags(flags); },
                        [&] {
                          io::CountingSink sink;
                          io::DataWriter writer(sink);
                          core::CheckpointOptions opts;
                          opts.mode = mode;
                          core::Checkpoint::run(writer, 0,
                                                engine.attr_bases(), opts);
                          writer.flush();
                          m.bytes = sink.count();
                        });
  return m;
}

Measured measure_attrs_plan(analysis::AnalysisEngine& engine,
                            const spec::PlanExecutor& exec,
                            const std::vector<bool>& flags) {
  Measured m;
  m.seconds = time_best([&] { engine.restore_flags(flags); },
                        [&] {
                          io::CountingSink sink;
                          io::DataWriter writer(sink);
                          spec::run_plan_checkpoint(writer, 0,
                                                    engine.attr_ptrs(), exec);
                          writer.flush();
                          m.bytes = sink.count();
                        });
  return m;
}

double measure_traversal_generic(analysis::AnalysisEngine& engine,
                                 const std::vector<bool>& flags) {
  return time_best([&] { engine.restore_flags(flags); },
                   [&] {
                     io::CountingSink sink;
                     io::DataWriter writer(sink);
                     core::CheckpointOptions opts;
                     opts.mode = core::Mode::kIncremental;
                     opts.dry_run = true;
                     core::Checkpoint::run(writer, 0, engine.attr_bases(),
                                           opts);
                   });
}

double measure_traversal_plan(analysis::AnalysisEngine& engine,
                              const spec::PlanExecutor& exec,
                              const std::vector<bool>& flags) {
  return time_best([&] { engine.restore_flags(flags); },
                   [&] {
                     for (void* attr : engine.attr_ptrs()) exec.run_dry(attr);
                   });
}

PhaseReport run_phase(analysis::AnalysisEngine& engine,
                      const spec::PlanExecutor& exec,
                      const std::function<int(
                          const analysis::AnalysisEngine::IterationHook&)>&
                          phase_runner) {
  PhaseReport report;
  int traversal_samples = 0;
  auto hook = [&](int) {
    auto flags = engine.save_flags();
    report.full.add(measure_attrs_generic(engine, core::Mode::kFull, flags));
    report.incremental.add(
        measure_attrs_generic(engine, core::Mode::kIncremental, flags));
    report.specialized.add(measure_attrs_plan(engine, exec, flags));
    report.traversal_generic += measure_traversal_generic(engine, flags);
    report.traversal_plan += measure_traversal_plan(engine, exec, flags);
    ++traversal_samples;
    // Consume the checkpoint: flags cleared, next iteration starts clean.
    engine.restore_flags(flags);
    engine.reset_flags();
  };
  phase_runner(hook);
  if (traversal_samples > 0) {
    report.traversal_generic /= traversal_samples;
    report.traversal_plan /= traversal_samples;
  }
  return report;
}

void print_phase(const char* name, int iterations, const PhaseReport& r) {
  std::printf("\n--- %s (%d iterations, checkpoint per iteration) ---\n",
              name, iterations);
  print_row({"", "full", "incremental", "spec-incr"}, 14);
  print_row({"min ckpt size", fmt_mb(r.full.min_bytes),
             fmt_mb(r.incremental.min_bytes), fmt_mb(r.specialized.min_bytes)},
            14);
  print_row({"max ckpt size", fmt_mb(r.full.max_bytes),
             fmt_mb(r.incremental.max_bytes), fmt_mb(r.specialized.max_bytes)},
            14);
  print_row({"avg ckpt time", fmt_ms(r.full.avg()), fmt_ms(r.incremental.avg()),
             fmt_ms(r.specialized.avg())},
            14);
  print_row({"traversal", "-", fmt_ms(r.traversal_generic),
             fmt_ms(r.traversal_plan)},
            14);
  std::printf("speedup spec-incr over incr: time %.2fx, traversal %.2fx\n",
              r.incremental.avg() / r.specialized.avg(),
              r.traversal_generic / r.traversal_plan);
}

}  // namespace

int main() {
  int stages = 1;
  if (const char* env = std::getenv("ICKPT_BENCH_STAGES")) {
    int n = std::atoi(env);
    if (n > 0) stages = n;
  }
  print_header("Table 1: checkpointing the program analysis engine");

  auto program =
      analysis::parse_program(analysis::generate_image_program(stages));
  core::Heap heap;
  analysis::AnalysisEngine engine(*program, heap);
  std::printf("analyzed program: %zu statements, %zu functions (stages=%d)\n",
              program->statements.size(), program->functions.size(), stages);

  analysis::AnalysisShapes shapes = analysis::AnalysisShapes::make();
  spec::PlanCompiler compiler;
  spec::Plan bta_plan = compiler.compile(
      *shapes.attributes,
      analysis::make_phase_pattern(analysis::Phase::kBindingTime));
  spec::Plan eta_plan = compiler.compile(
      *shapes.attributes,
      analysis::make_phase_pattern(analysis::Phase::kEvalTime));
  spec::PlanExecutor bta_exec(bta_plan);
  spec::PlanExecutor eta_exec(eta_plan);

  // Side-effect phase runs first (its results are read, never modified, by
  // the later phases); we checkpoint it but Table 1 reports BTA/ETA.
  engine.run_side_effect();
  engine.reset_flags();

  int bta_iters = 0;
  PhaseReport bta = run_phase(
      engine, bta_exec,
      [&](const analysis::AnalysisEngine::IterationHook& hook) {
        bta_iters = engine.run_binding_time(analysis::default_bta_config(),
                                            hook);
        return bta_iters;
      });
  print_phase("Binding-time analysis (BTA)", bta_iters, bta);

  int eta_iters = 0;
  PhaseReport eta = run_phase(
      engine, eta_exec,
      [&](const analysis::AnalysisEngine::IterationHook& hook) {
        eta_iters = engine.run_eval_time(hook);
        return eta_iters;
      });
  print_phase("Evaluation-time analysis (ETA)", eta_iters, eta);

  std::printf(
      "\npaper shape (Table 1): incremental checkpoints shrink toward the\n"
      "fixpoint (min << max << full); specialized incremental cuts BTA\n"
      "checkpoint time >1.3x and ETA almost 1.5x; traversal time drops\n"
      "1.8x (BTA) to >2x (ETA). Absolute sizes differ (our Attributes\n"
      "structures are smaller than Tempo's).\n");
  return 0;
}
