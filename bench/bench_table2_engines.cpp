// Table 2: synthetic checkpoint execution time, unspecialized vs specialized
// code across execution engines. Configuration per the paper's caption:
// length-5 lists, 10 integers written for each element, modified objects
// only as last elements, possibly-modified lists in {1,5}, percentage of
// those actually modified in {100,50,25}.
//
// Engine substitution (DESIGN.md §2): JDK 1.2 -> virtual (generic driver),
// JDK 1.2 + HotSpot -> inlined residual, Harissa -> compiled plan. The
// specialized column for the `virtual` row runs the specialized plan (the
// specialized code is, as in the paper, new code — it cannot stay virtual).
#include "bench/bench_util.hpp"

using namespace ickpt;
using namespace ickpt::bench;

int main() {
  print_header("Table 2: execution time, unspecialized vs specialized code "
               "(L=5, 10 ints/elem, last-element positions)");
  std::printf("structures=%zu reps=%d\n\n", bench_structures(), bench_reps());
  print_row({"engine", "mod-lists", "unspec-100%", "unspec-50%", "unspec-25%",
             "spec-100%", "spec-50%", "spec-25%"},
            13);

  synth::SynthShapes shapes = synth::SynthShapes::make();
  const int list_length = 5;
  const int values = 10;

  for (const char* engine : {"virtual", "plan", "inlined"}) {
    for (int mod_lists : {1, 5}) {
      std::vector<std::string> cells{engine, std::to_string(mod_lists)};
      std::vector<std::string> spec_cells;
      for (int percent : {100, 50, 25}) {
        synth::SynthConfig config;
        config.num_structures = bench_structures();
        config.list_length = list_length;
        config.values_per_elem = values;
        config.modified_lists = mod_lists;
        config.last_element_only = true;
        config.percent_modified = percent;
        core::Heap heap;
        synth::SynthWorkload workload(heap, config);
        workload.reset_flags();
        workload.mutate();
        auto flags = workload.save_flags();

        spec::PlanCompiler compiler;
        Measured unspec;
        Measured specialized;
        if (std::string(engine) == "virtual") {
          unspec = measure_generic(workload, core::Mode::kIncremental, flags);
          spec::Plan plan = compiler.compile(
              *shapes.compound,
              synth::make_synth_pattern(synth::SpecLevel::kPositions,
                                        list_length, values, mod_lists));
          spec::PlanExecutor exec(plan);
          specialized = measure_plan(workload, exec, flags);
        } else if (std::string(engine) == "plan") {
          spec::Plan uniform = compiler.compile(
              *shapes.compound,
              synth::make_synth_pattern(synth::SpecLevel::kStructure,
                                        list_length, values, mod_lists));
          spec::Plan full = compiler.compile(
              *shapes.compound,
              synth::make_synth_pattern(synth::SpecLevel::kPositions,
                                        list_length, values, mod_lists));
          spec::PlanExecutor uexec(uniform);
          spec::PlanExecutor fexec(full);
          unspec = measure_plan(workload, uexec, flags);
          specialized = measure_plan(workload, fexec, flags);
        } else {
          unspec = measure_residual(
              workload, synth::residual::uniform_fn(list_length, values),
              flags);
          specialized = measure_residual(
              workload,
              synth::residual::specialized_fn(list_length, values, mod_lists,
                                              true),
              flags);
        }
        cells.push_back(fmt_ms(unspec.seconds));
        spec_cells.push_back(fmt_ms(specialized.seconds));

        const std::string grid = std::string("engine=") + engine +
                                 " mod_lists=" + std::to_string(mod_lists) +
                                 " pct=" + std::to_string(percent);
        JsonReport::instance().add("table2", grid + " code=unspec",
                                   unspec.stats, unspec.bytes);
        JsonReport::instance().add("table2", grid + " code=spec",
                                   specialized.stats, specialized.bytes);
      }
      cells.insert(cells.end(), spec_cells.begin(), spec_cells.end());
      print_row(cells, 13);
    }
  }
  std::printf(
      "\npaper shape: every engine benefits from specialization; the best\n"
      "engine running unspecialized code can beat a worse engine running\n"
      "specialized code, and specialized code on the best engine wins\n"
      "overall (specialization and dynamic compilation are complementary).\n");
  return 0;
}
