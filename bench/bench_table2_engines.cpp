// Table 2: synthetic checkpoint execution time, unspecialized vs specialized
// code across execution engines. Configuration per the paper's caption:
// length-5 lists, 10 integers written for each element, modified objects
// only as last elements, possibly-modified lists in {1,5}, percentage of
// those actually modified in {100,50,25}.
//
// Engine substitution (DESIGN.md §2): JDK 1.2 -> virtual (generic driver),
// JDK 1.2 + HotSpot -> inlined residual, Harissa -> compiled plan. The
// specialized column for the `virtual` row runs the specialized plan (the
// specialized code is, as in the paper, new code — it cannot stay virtual).
#include "bench/bench_util.hpp"

#include "analysis/attributes.hpp"
#include "analysis/shapes.hpp"
#include "spec/inference.hpp"
#include "verify/infer.hpp"

using namespace ickpt;
using namespace ickpt::bench;

namespace {

std::size_t elided_tests(const spec::Plan& plan) {
  std::size_t tests = 0;
  for (const spec::Op& op : plan.ops)
    if (op.code == spec::OpCode::kTestSkip) ++tests;
  return plan.nodes_covered - tests;
}

// Static (write-set inferred) vs dynamic (observation learned) patterns for
// the analysis-engine phases, measured by how many per-node modification
// tests the compiled plan elides. The dynamic column needs observation
// epochs to converge and is only sound if those epochs were representative;
// the static column is available before the first epoch and is sound by
// construction.
void print_inference_section() {
  std::printf("\nstatic vs dynamic pattern inference (Attributes shape):\n");
  print_row({"phase", "static-elided", "dynamic-elided", "plan-nodes"}, 15);

  auto shapes = analysis::AnalysisShapes::make();
  spec::CompileOptions copts;
  copts.verify_pattern = true;  // static plans go through the verify gate
  struct PhaseRow {
    const char* name;
    analysis::Phase phase;
  };
  for (const PhaseRow& row :
       {PhaseRow{"side-effect", analysis::Phase::kSideEffect},
        PhaseRow{"binding-time", analysis::Phase::kBindingTime},
        PhaseRow{"eval-time", analysis::Phase::kEvalTime}}) {
    auto inferred = verify::infer_attributes_pattern(row.phase);
    spec::Plan static_plan =
        spec::PlanCompiler(copts).compile(*shapes.attributes, inferred.pattern);

    // Dynamic inference over a representative workload: observation epochs
    // that dirty exactly what the phase writes.
    core::Heap heap;
    std::vector<analysis::Attributes*> attrs;
    for (int i = 0; i < 64; ++i) {
      auto* se = heap.make<analysis::SEEntry>();
      auto* bt_leaf = heap.make<analysis::BT>();
      auto* et_leaf = heap.make<analysis::ET>();
      auto* attr = heap.make<analysis::Attributes>(
          se, heap.make<analysis::BTEntry>(bt_leaf),
          heap.make<analysis::ETEntry>(et_leaf));
      attr->info().reset_modified();
      se->info().reset_modified();
      bt_leaf->info().reset_modified();
      et_leaf->info().reset_modified();
      attr->bt()->info().reset_modified();
      attr->et()->info().reset_modified();
      attrs.push_back(attr);
    }
    spec::PatternInferencer inferencer(*shapes.attributes);
    for (int epoch = 0; epoch < 4; ++epoch) {
      for (analysis::Attributes* attr : attrs) {
        std::int32_t v = epoch;
        switch (row.phase) {
          case analysis::Phase::kSideEffect:
            attr->se()->set_sets(std::span(&v, 1), std::span(&v, 1));
            break;
          case analysis::Phase::kBindingTime:
            attr->bt()->leaf()->set_annotation(
                epoch % 2 == 0 ? analysis::kDynamic : analysis::kStatic);
            break;
          default:
            attr->et()->leaf()->set_annotation(
                epoch % 2 == 0 ? analysis::kDynamic : analysis::kStatic);
            break;
        }
        inferencer.observe(attr);
        attr->info().reset_modified();
        attr->se()->info().reset_modified();
        attr->bt()->info().reset_modified();
        attr->bt()->leaf()->info().reset_modified();
        attr->et()->info().reset_modified();
        attr->et()->leaf()->info().reset_modified();
      }
    }
    spec::Plan dynamic_plan = spec::PlanCompiler().compile(
        *shapes.attributes, inferencer.infer());

    print_row({row.name, std::to_string(elided_tests(static_plan)),
               std::to_string(elided_tests(dynamic_plan)),
               std::to_string(static_plan.nodes_covered)},
              15);
  }
}

}  // namespace

int main() {
  print_header("Table 2: execution time, unspecialized vs specialized code "
               "(L=5, 10 ints/elem, last-element positions)");
  std::printf("structures=%zu reps=%d\n\n", bench_structures(), bench_reps());
  print_row({"engine", "mod-lists", "unspec-100%", "unspec-50%", "unspec-25%",
             "spec-100%", "spec-50%", "spec-25%"},
            13);

  synth::SynthShapes shapes = synth::SynthShapes::make();
  const int list_length = 5;
  const int values = 10;

  for (const char* engine : {"virtual", "plan", "inlined"}) {
    for (int mod_lists : {1, 5}) {
      std::vector<std::string> cells{engine, std::to_string(mod_lists)};
      std::vector<std::string> spec_cells;
      for (int percent : {100, 50, 25}) {
        synth::SynthConfig config;
        config.num_structures = bench_structures();
        config.list_length = list_length;
        config.values_per_elem = values;
        config.modified_lists = mod_lists;
        config.last_element_only = true;
        config.percent_modified = percent;
        core::Heap heap;
        synth::SynthWorkload workload(heap, config);
        workload.reset_flags();
        workload.mutate();
        auto flags = workload.save_flags();

        spec::PlanCompiler compiler;
        Measured unspec;
        Measured specialized;
        if (std::string(engine) == "virtual") {
          unspec = measure_generic(workload, core::Mode::kIncremental, flags);
          spec::Plan plan = compiler.compile(
              *shapes.compound,
              synth::make_synth_pattern(synth::SpecLevel::kPositions,
                                        list_length, values, mod_lists));
          spec::PlanExecutor exec(plan);
          specialized = measure_plan(workload, exec, flags);
        } else if (std::string(engine) == "plan") {
          spec::Plan uniform = compiler.compile(
              *shapes.compound,
              synth::make_synth_pattern(synth::SpecLevel::kStructure,
                                        list_length, values, mod_lists));
          spec::Plan full = compiler.compile(
              *shapes.compound,
              synth::make_synth_pattern(synth::SpecLevel::kPositions,
                                        list_length, values, mod_lists));
          spec::PlanExecutor uexec(uniform);
          spec::PlanExecutor fexec(full);
          unspec = measure_plan(workload, uexec, flags);
          specialized = measure_plan(workload, fexec, flags);
        } else {
          unspec = measure_residual(
              workload, synth::residual::uniform_fn(list_length, values),
              flags);
          specialized = measure_residual(
              workload,
              synth::residual::specialized_fn(list_length, values, mod_lists,
                                              true),
              flags);
        }
        cells.push_back(fmt_ms(unspec.seconds));
        spec_cells.push_back(fmt_ms(specialized.seconds));

        const std::string grid = std::string("engine=") + engine +
                                 " mod_lists=" + std::to_string(mod_lists) +
                                 " pct=" + std::to_string(percent);
        JsonReport::instance().add("table2", grid + " code=unspec",
                                   unspec.stats, unspec.bytes);
        JsonReport::instance().add("table2", grid + " code=spec",
                                   specialized.stats, specialized.bytes);
      }
      cells.insert(cells.end(), spec_cells.begin(), spec_cells.end());
      print_row(cells, 13);
    }
  }
  print_inference_section();

  std::printf(
      "\npaper shape: every engine benefits from specialization; the best\n"
      "engine running unspecialized code can beat a worse engine running\n"
      "specialized code, and specialized code on the best engine wins\n"
      "overall (specialization and dynamic compilation are complementary).\n");
  return 0;
}
