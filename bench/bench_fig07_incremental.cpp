// Figure 7: incremental vs full checkpointing (Harissa JVM in the paper).
//
// Grid: list length in {1,5}; integers recorded per modified object in
// {1,10}; percentage of modified elements in {100,50,25}. Reported value is
// the speedup of incremental over full checkpointing, as in the figure.
// Expected shape: speedup grows as the modification percentage falls and as
// the per-object record cost rises; with one int per element and everything
// modified, incremental is at best break-even (the flag tests are overhead).
#include "bench/bench_util.hpp"

using namespace ickpt;
using namespace ickpt::bench;

int main() {
  print_header("Figure 7: incremental vs full checkpointing (speedup)");
  std::printf("structures=%zu reps=%d\n\n", bench_structures(), bench_reps());
  print_row({"L", "ints/elem", "%modified", "full", "incr", "incr-p50",
             "incr-p95", "incr-max", "ckpt size", "speedup"});

  for (int list_length : {1, 5}) {
    for (int values : {1, 10}) {
      for (int percent : {100, 50, 25}) {
        synth::SynthConfig config;
        config.num_structures = bench_structures();
        config.list_length = list_length;
        config.values_per_elem = values;
        config.percent_modified = percent;
        core::Heap heap;
        synth::SynthWorkload workload(heap, config);
        workload.reset_flags();
        workload.mutate();
        auto flags = workload.save_flags();

        Measured full = measure_generic(workload, core::Mode::kFull, flags);
        Measured incr =
            measure_generic(workload, core::Mode::kIncremental, flags);

        print_row({std::to_string(list_length), std::to_string(values),
                   std::to_string(percent), fmt_ms(full.seconds),
                   fmt_ms(incr.seconds), fmt_ms(incr.stats.p50),
                   fmt_ms(incr.stats.p95), fmt_ms(incr.stats.max),
                   fmt_mb(incr.bytes), fmt_x(full.seconds / incr.seconds)});

        const std::string grid = "L=" + std::to_string(list_length) +
                                 " v=" + std::to_string(values) +
                                 " pct=" + std::to_string(percent);
        JsonReport::instance().add("fig07", grid + " mode=full", full.stats,
                                   full.bytes);
        JsonReport::instance().add("fig07", grid + " mode=incremental",
                                   incr.stats, incr.bytes);
      }
    }
  }
  std::printf(
      "\npaper shape: speedups up to >3x for long lists / few modified\n"
      "objects / 10 ints per element; near 1x when everything is modified.\n");
  return 0;
}
