// Micro-benchmarks (google-benchmark) backing the analysis in the paper
// reproduction: stream encoding throughput, CRC, per-object cost of each
// execution engine, flag maintenance, and the cycle-guard overhead that
// justifies keeping it off by default.
#include <benchmark/benchmark.h>

#include "core/checkpoint.hpp"
#include "io/byte_sink.hpp"
#include "io/crc32.hpp"
#include "io/data_writer.hpp"
#include "spec/compiler.hpp"
#include "spec/executor.hpp"
#include "synth/residual_dispatch.hpp"
#include "synth/shapes.hpp"
#include "synth/workload.hpp"

namespace {

using namespace ickpt;

void BM_WriteI32(benchmark::State& state) {
  io::CountingSink sink;
  io::DataWriter writer(sink);
  std::int32_t v = 0;
  for (auto _ : state) {
    writer.write_i32(v++);
  }
  state.SetBytesProcessed(state.iterations() * 4);
}
BENCHMARK(BM_WriteI32);

void BM_WriteVarint(benchmark::State& state) {
  io::CountingSink sink;
  io::DataWriter writer(sink);
  std::uint64_t v = 0;
  for (auto _ : state) {
    writer.write_varint(v++ & 0xFFFFF);
  }
}
BENCHMARK(BM_WriteVarint);

void BM_Crc32(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)),
                                 0xA5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(io::Crc32::compute(data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(1 << 10)->Arg(1 << 16);

void BM_SetModified(benchmark::State& state) {
  core::CheckpointInfo info;
  for (auto _ : state) {
    info.set_modified();
    benchmark::DoNotOptimize(info);
  }
}
BENCHMARK(BM_SetModified);

struct EngineFixtureState {
  core::Heap heap;
  std::unique_ptr<synth::SynthWorkload> workload;
  synth::SynthShapes shapes = synth::SynthShapes::make();
  std::vector<bool> flags;

  EngineFixtureState() {
    synth::SynthConfig config;
    config.num_structures = 1000;
    config.list_length = 5;
    config.values_per_elem = 10;
    config.percent_modified = 50;
    workload = std::make_unique<synth::SynthWorkload>(heap, config);
    workload->reset_flags();
    workload->mutate();
    flags = workload->save_flags();
  }

  static EngineFixtureState& instance() {
    static EngineFixtureState state;
    return state;
  }
};

void BM_EngineVirtual(benchmark::State& state) {
  auto& fx = EngineFixtureState::instance();
  for (auto _ : state) {
    fx.workload->restore_flags(fx.flags);
    io::CountingSink sink;
    io::DataWriter writer(sink);
    core::CheckpointOptions opts;
    opts.mode = core::Mode::kIncremental;
    core::Checkpoint::run(writer, 0, fx.workload->root_bases(), opts);
    writer.flush();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(fx.workload->total_objects()));
}
BENCHMARK(BM_EngineVirtual);

void BM_EngineVirtualCycleGuard(benchmark::State& state) {
  auto& fx = EngineFixtureState::instance();
  for (auto _ : state) {
    fx.workload->restore_flags(fx.flags);
    io::CountingSink sink;
    io::DataWriter writer(sink);
    core::CheckpointOptions opts;
    opts.mode = core::Mode::kIncremental;
    opts.cycle_guard = true;
    core::Checkpoint::run(writer, 0, fx.workload->root_bases(), opts);
    writer.flush();
  }
}
BENCHMARK(BM_EngineVirtualCycleGuard);

void BM_EnginePlan(benchmark::State& state) {
  auto& fx = EngineFixtureState::instance();
  spec::Plan plan = spec::PlanCompiler().compile(
      *fx.shapes.compound,
      synth::make_synth_pattern(synth::SpecLevel::kStructure, 5, 10, 5));
  spec::PlanExecutor exec(plan);
  for (auto _ : state) {
    fx.workload->restore_flags(fx.flags);
    io::CountingSink sink;
    io::DataWriter writer(sink);
    spec::run_plan_checkpoint(writer, 0, fx.workload->root_ptrs(), exec);
    writer.flush();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(fx.workload->total_objects()));
}
BENCHMARK(BM_EnginePlan);

void BM_EngineInlined(benchmark::State& state) {
  auto& fx = EngineFixtureState::instance();
  auto fn = synth::residual::uniform_fn(5, 10);
  for (auto _ : state) {
    fx.workload->restore_flags(fx.flags);
    io::CountingSink sink;
    io::DataWriter writer(sink);
    synth::residual::run_residual_checkpoint(
        writer, 0, fx.workload->roots(),
        [fn](synth::Compound& c, io::DataWriter& d) { fn(c, d); });
    writer.flush();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(fx.workload->total_objects()));
}
BENCHMARK(BM_EngineInlined);

void BM_PlanCompilation(benchmark::State& state) {
  auto& fx = EngineFixtureState::instance();
  for (auto _ : state) {
    spec::Plan plan = spec::PlanCompiler().compile(
        *fx.shapes.compound,
        synth::make_synth_pattern(synth::SpecLevel::kPositions, 5, 10, 3));
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_PlanCompilation);

}  // namespace

BENCHMARK_MAIN();
