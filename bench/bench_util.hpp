// Shared measurement utilities for the paper-reproduction benchmarks.
//
// Methodology: every timed quantity is the wall-clock time of constructing
// one checkpoint into a CountingSink (pure construction cost, no disk — the
// paper likewise defers the copy to stable storage). Flags are snapshotted
// and replayed so that each engine measures the identical dirty state, and
// each measurement reports the minimum over `reps` runs (best-of, to shed
// scheduler noise). Workload scale defaults to the paper's 20,000 compound
// structures; set ICKPT_BENCH_STRUCTURES to shrink it on slow machines.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "io/byte_sink.hpp"
#include "io/data_writer.hpp"
#include "spec/compiler.hpp"
#include "spec/executor.hpp"
#include "synth/residual_dispatch.hpp"
#include "synth/shapes.hpp"
#include "synth/workload.hpp"

namespace ickpt::bench {

inline std::size_t bench_structures() {
  if (const char* env = std::getenv("ICKPT_BENCH_STRUCTURES")) {
    long n = std::atol(env);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return 20000;  // paper: "constructs 20,000 compound structures"
}

inline int bench_reps() {
  if (const char* env = std::getenv("ICKPT_BENCH_REPS")) {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 5;
}

/// Seconds for one invocation of `fn`, minimized over reps (+1 warmup).
/// `prepare` restores the pre-measurement state before every run.
inline double time_best(const std::function<void()>& prepare,
                        const std::function<void()>& fn,
                        int reps = bench_reps()) {
  using clock = std::chrono::steady_clock;
  double best = 1e100;
  for (int r = 0; r <= reps; ++r) {
    prepare();
    auto t0 = clock::now();
    fn();
    auto t1 = clock::now();
    double s = std::chrono::duration<double>(t1 - t0).count();
    if (r > 0 && s < best) best = s;  // run 0 is warmup
  }
  return best;
}

struct Measured {
  double seconds = 0;
  std::size_t bytes = 0;
};

/// Checkpoint `workload` with the generic driver; bytes counted, not stored.
inline Measured measure_generic(synth::SynthWorkload& workload,
                                core::Mode mode,
                                const std::vector<bool>& flags) {
  Measured m;
  auto body = [&] {
    io::CountingSink sink;
    io::DataWriter writer(sink);
    core::CheckpointOptions opts;
    opts.mode = mode;
    core::Checkpoint::run(writer, 0, workload.root_bases(), opts);
    writer.flush();
    m.bytes = sink.count();
  };
  m.seconds = time_best([&] { workload.restore_flags(flags); }, body);
  return m;
}

inline Measured measure_plan(synth::SynthWorkload& workload,
                             const spec::PlanExecutor& exec,
                             const std::vector<bool>& flags) {
  Measured m;
  auto body = [&] {
    io::CountingSink sink;
    io::DataWriter writer(sink);
    spec::run_plan_checkpoint(writer, 0, workload.root_ptrs(), exec);
    writer.flush();
    m.bytes = sink.count();
  };
  m.seconds = time_best([&] { workload.restore_flags(flags); }, body);
  return m;
}

inline Measured measure_residual(synth::SynthWorkload& workload,
                                 synth::residual::ResidualFn fn,
                                 const std::vector<bool>& flags) {
  Measured m;
  auto body = [&] {
    io::CountingSink sink;
    io::DataWriter writer(sink);
    synth::residual::run_residual_checkpoint(
        writer, 0, workload.roots(),
        [fn](synth::Compound& c, io::DataWriter& d) { fn(c, d); });
    writer.flush();
    m.bytes = sink.count();
  };
  m.seconds = time_best([&] { workload.restore_flags(flags); }, body);
  return m;
}

// --- tiny fixed-width table printer ------------------------------------------

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void print_row(const std::vector<std::string>& cells, int width = 12) {
  for (const std::string& cell : cells) std::printf("%-*s", width, cell.c_str());
  std::printf("\n");
}

inline std::string fmt_ms(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fms", seconds * 1e3);
  return buf;
}

inline std::string fmt_mb(std::size_t bytes) {
  char buf[32];
  if (bytes >= 1000000)
    std::snprintf(buf, sizeof(buf), "%.2fMb", static_cast<double>(bytes) / 1e6);
  else
    std::snprintf(buf, sizeof(buf), "%.2fKb", static_cast<double>(bytes) / 1e3);
  return buf;
}

inline std::string fmt_x(double speedup) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", speedup);
  return buf;
}

}  // namespace ickpt::bench
