// Shared measurement utilities for the paper-reproduction benchmarks.
//
// Methodology: every timed quantity is the wall-clock time of constructing
// one checkpoint into a CountingSink (pure construction cost, no disk — the
// paper likewise defers the copy to stable storage). Flags are snapshotted
// and replayed so that each engine measures the identical dirty state.
// Each measurement records every rep into an obs::Histogram and reports
// best/p50/p95/max/mean — best-of sheds scheduler noise for the headline
// number, the quantiles show how noisy the run actually was. Workload scale
// defaults to the paper's 20,000 compound structures; set
// ICKPT_BENCH_STRUCTURES to shrink it on slow machines. Benchmarks that
// call JsonReport::add additionally write their rows to BENCH_obs.json
// (path overridable via ICKPT_BENCH_JSON) when the process exits.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "io/byte_sink.hpp"
#include "io/data_writer.hpp"
#include "obs/metrics.hpp"
#include "spec/compiler.hpp"
#include "spec/executor.hpp"
#include "synth/residual_dispatch.hpp"
#include "synth/shapes.hpp"
#include "synth/workload.hpp"

namespace ickpt::bench {

inline std::size_t bench_structures() {
  if (const char* env = std::getenv("ICKPT_BENCH_STRUCTURES")) {
    long n = std::atol(env);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return 20000;  // paper: "constructs 20,000 compound structures"
}

inline int bench_reps() {
  if (const char* env = std::getenv("ICKPT_BENCH_REPS")) {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 5;
}

/// Distribution of one measurement's reps. best/max/mean are exact;
/// p50/p95 are histogram quantiles (obs::Histogram, fine exponential
/// buckets), so they carry the bucket interpolation error — good enough to
/// see noise, not for sub-bucket comparisons.
struct TimingStats {
  double best = 0;
  double p50 = 0;
  double p95 = 0;
  double max = 0;
  double mean = 0;
};

/// Time `fn` over `reps` runs (+1 warmup). `prepare` restores the
/// pre-measurement state before every run. Uses a private (uninstalled)
/// obs::Registry, so it neither requires nor disturbs process telemetry.
inline TimingStats time_stats(const std::function<void()>& prepare,
                              const std::function<void()>& fn,
                              int reps = bench_reps()) {
  using clock = std::chrono::steady_clock;
  obs::Registry local;
  obs::Histogram hist = local.histogram(
      "bench_seconds", {}, obs::Histogram::exponential_bounds(1e-7, 1.3, 96));
  TimingStats stats;
  stats.best = 1e100;
  double sum = 0;
  for (int r = 0; r <= reps; ++r) {
    prepare();
    auto t0 = clock::now();
    fn();
    auto t1 = clock::now();
    double s = std::chrono::duration<double>(t1 - t0).count();
    if (r == 0) continue;  // run 0 is warmup
    hist.observe(s);
    sum += s;
    if (s < stats.best) stats.best = s;
    if (s > stats.max) stats.max = s;
  }
  if (reps > 0) stats.mean = sum / reps;
  if (stats.best > 1e99) stats.best = 0;
  obs::Snapshot snap = local.snapshot();
  if (const obs::MetricSnapshot* m = snap.find("bench_seconds")) {
    stats.p50 = m->quantile(0.5);
    stats.p95 = m->quantile(0.95);
  }
  return stats;
}

/// Seconds for one invocation of `fn`, minimized over reps (+1 warmup).
inline double time_best(const std::function<void()>& prepare,
                        const std::function<void()>& fn,
                        int reps = bench_reps()) {
  return time_stats(prepare, fn, reps).best;
}

struct Measured {
  /// Best-of-reps seconds (the headline number, == stats.best).
  double seconds = 0;
  std::size_t bytes = 0;
  TimingStats stats;
};

/// Checkpoint `workload` with the generic driver; bytes counted, not stored.
inline Measured measure_generic(synth::SynthWorkload& workload,
                                core::Mode mode,
                                const std::vector<bool>& flags) {
  Measured m;
  auto body = [&] {
    io::CountingSink sink;
    io::DataWriter writer(sink);
    core::CheckpointOptions opts;
    opts.mode = mode;
    core::Checkpoint::run(writer, 0, workload.root_bases(), opts);
    writer.flush();
    m.bytes = sink.count();
  };
  m.stats = time_stats([&] { workload.restore_flags(flags); }, body);
  m.seconds = m.stats.best;
  return m;
}

inline Measured measure_plan(synth::SynthWorkload& workload,
                             const spec::PlanExecutor& exec,
                             const std::vector<bool>& flags) {
  Measured m;
  auto body = [&] {
    io::CountingSink sink;
    io::DataWriter writer(sink);
    spec::run_plan_checkpoint(writer, 0, workload.root_ptrs(), exec);
    writer.flush();
    m.bytes = sink.count();
  };
  m.stats = time_stats([&] { workload.restore_flags(flags); }, body);
  m.seconds = m.stats.best;
  return m;
}

inline Measured measure_residual(synth::SynthWorkload& workload,
                                 synth::residual::ResidualFn fn,
                                 const std::vector<bool>& flags) {
  Measured m;
  auto body = [&] {
    io::CountingSink sink;
    io::DataWriter writer(sink);
    synth::residual::run_residual_checkpoint(
        writer, 0, workload.roots(),
        [fn](synth::Compound& c, io::DataWriter& d) { fn(c, d); });
    writer.flush();
    m.bytes = sink.count();
  };
  m.stats = time_stats([&] { workload.restore_flags(flags); }, body);
  m.seconds = m.stats.best;
  return m;
}

// --- machine-readable report -------------------------------------------------

/// Accumulates benchmark rows and writes them as a JSON array to
/// BENCH_obs.json (or $ICKPT_BENCH_JSON) when the process exits. One
/// instance per process; benchmarks just call JsonReport::add.
class JsonReport {
 public:
  static JsonReport& instance() {
    static JsonReport report;
    return report;
  }

  /// One measured configuration. `bench` names the benchmark, `config`
  /// the grid point (e.g. "L=5 v=10 pct=25 engine=plan").
  void add(const std::string& bench, const std::string& config,
           const TimingStats& stats, std::size_t bytes) {
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "  {\"bench\": \"%s\", \"config\": \"%s\", "
                  "\"best_s\": %.9g, \"p50_s\": %.9g, \"p95_s\": %.9g, "
                  "\"max_s\": %.9g, \"mean_s\": %.9g, \"bytes\": %zu}",
                  escape(bench).c_str(), escape(config).c_str(), stats.best,
                  stats.p50, stats.p95, stats.max, stats.mean, bytes);
    rows_.push_back(buf);
  }

  ~JsonReport() {
    if (rows_.empty()) return;
    const char* path = std::getenv("ICKPT_BENCH_JSON");
    if (path == nullptr) path = "BENCH_obs.json";
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) return;  // best-effort: a report must not fail a bench
    std::fputs("[\n", f);
    for (std::size_t i = 0; i < rows_.size(); ++i)
      std::fprintf(f, "%s%s\n", rows_[i].c_str(),
                   i + 1 < rows_.size() ? "," : "");
    std::fputs("]\n", f);
    std::fclose(f);
    std::printf("\nwrote %zu row(s) to %s\n", rows_.size(), path);
  }

 private:
  JsonReport() = default;

  static std::string escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      if (static_cast<unsigned char>(c) >= 0x20) out += c;
    }
    return out;
  }

  std::vector<std::string> rows_;
};

// --- tiny fixed-width table printer ------------------------------------------

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void print_row(const std::vector<std::string>& cells, int width = 12) {
  for (const std::string& cell : cells) std::printf("%-*s", width, cell.c_str());
  std::printf("\n");
}

inline std::string fmt_ms(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fms", seconds * 1e3);
  return buf;
}

inline std::string fmt_mb(std::size_t bytes) {
  char buf[32];
  if (bytes >= 1000000)
    std::snprintf(buf, sizeof(buf), "%.2fMb", static_cast<double>(bytes) / 1e6);
  else
    std::snprintf(buf, sizeof(buf), "%.2fKb", static_cast<double>(bytes) / 1e3);
  return buf;
}

inline std::string fmt_x(double speedup) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", speedup);
  return buf;
}

}  // namespace ickpt::bench
