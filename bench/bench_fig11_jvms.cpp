// Figure 11: the Fig. 10 configuration compared across execution engines.
//
// Engine substitution (DESIGN.md §2): the paper's JVM axis (JDK 1.2 JIT /
// JDK 1.2 + HotSpot / Harissa) becomes our execution-engine axis:
//   virtual — generic driver (virtual dispatch per object)
//   plan    — compiled plan, interpreted ops, no dispatch
//   inlined — fully inlined residual code
// For each engine we report unspecialized ("unspec": the structure-only
// variant that still tests everything) and specialized ("spec": full
// pattern) times, mirroring Fig. 11a/b's question: does a better engine
// subsume specialization? (Paper's answer: no — they are complementary.)
#include "bench/bench_util.hpp"

using namespace ickpt;
using namespace ickpt::bench;

int main() {
  print_header("Figure 11: specialization vs execution engine "
               "(L=5, last-element positions)");
  std::printf("structures=%zu reps=%d\n\n", bench_structures(), bench_reps());
  print_row({"ints/elem", "mod-lists", "engine", "unspec", "spec", "spec-x"},
            13);

  synth::SynthShapes shapes = synth::SynthShapes::make();
  const int list_length = 5;
  for (int values : {1, 10}) {
    for (int mod_lists : {1, 3, 5}) {
      synth::SynthConfig config;
      config.num_structures = bench_structures();
      config.list_length = list_length;
      config.values_per_elem = values;
      config.modified_lists = mod_lists;
      config.last_element_only = true;
      config.percent_modified = 100;
      core::Heap heap;
      synth::SynthWorkload workload(heap, config);
      workload.reset_flags();
      workload.mutate();
      auto flags = workload.save_flags();

      // virtual engine: unspec = generic driver; spec impossible without
      // leaving the engine (as in the paper, where specialized code is new
      // source) — we report the structure-only plan as its "spec" analog.
      Measured v_unspec =
          measure_generic(workload, core::Mode::kIncremental, flags);

      spec::PlanCompiler compiler;
      spec::Plan uniform_plan = compiler.compile(
          *shapes.compound,
          synth::make_synth_pattern(synth::SpecLevel::kStructure, list_length,
                                    values, mod_lists));
      spec::Plan spec_plan = compiler.compile(
          *shapes.compound,
          synth::make_synth_pattern(synth::SpecLevel::kPositions, list_length,
                                    values, mod_lists));
      spec::PlanExecutor uniform_exec(uniform_plan);
      spec::PlanExecutor spec_exec(spec_plan);
      Measured p_unspec = measure_plan(workload, uniform_exec, flags);
      Measured p_spec = measure_plan(workload, spec_exec, flags);

      Measured i_unspec = measure_residual(
          workload, synth::residual::uniform_fn(list_length, values), flags);
      Measured i_spec = measure_residual(
          workload,
          synth::residual::specialized_fn(list_length, values, mod_lists,
                                          /*last_only=*/true),
          flags);

      auto row = [&](const char* engine, double unspec, double spec) {
        print_row({std::to_string(values), std::to_string(mod_lists), engine,
                   fmt_ms(unspec), fmt_ms(spec), fmt_x(unspec / spec)},
                  13);
      };
      row("virtual", v_unspec.seconds, p_spec.seconds);
      row("plan", p_unspec.seconds, p_spec.seconds);
      row("inlined", i_unspec.seconds, i_spec.seconds);
      std::printf("\n");
    }
  }
  std::printf(
      "paper shape: better engines shrink both columns, but specialization\n"
      "keeps a multi-x win on every engine — engine optimization and\n"
      "specialization are complementary (paper Table 2 / Fig. 11b).\n");
  return 0;
}
