// Figure 9: specialization w.r.t. the structure AND the set of lists that
// may contain modified objects. Lists outside the set are not traversed at
// all; within the set every element keeps its test.
//
// Grid: possibly-modified lists in {1,3,5}; percentage of elements in those
// lists actually modified in {100,50,25}; L in {1,5}; ints/elem in {1,10}.
#include "bench/bench_util.hpp"

using namespace ickpt;
using namespace ickpt::bench;

int main() {
  print_header(
      "Figure 9: specialization w.r.t. structure + possibly-modified lists "
      "(speedup over incremental)");
  std::printf("structures=%zu reps=%d\n\n", bench_structures(), bench_reps());
  print_row({"L", "ints/elem", "mod-lists", "%modified", "generic", "plan",
             "inlined", "plan-x", "inlined-x"});

  synth::SynthShapes shapes = synth::SynthShapes::make();
  for (int values : {1, 10}) {
    for (int list_length : {1, 5}) {
      for (int mod_lists : {1, 3, 5}) {
        for (int percent : {100, 50, 25}) {
          synth::SynthConfig config;
          config.num_structures = bench_structures();
          config.list_length = list_length;
          config.values_per_elem = values;
          config.modified_lists = mod_lists;
          config.percent_modified = percent;
          core::Heap heap;
          synth::SynthWorkload workload(heap, config);
          workload.reset_flags();
          workload.mutate();
          auto flags = workload.save_flags();

          Measured generic =
              measure_generic(workload, core::Mode::kIncremental, flags);

          spec::PatternNode pattern = synth::make_synth_pattern(
              synth::SpecLevel::kModifiedLists, list_length, values,
              mod_lists);
          spec::Plan plan =
              spec::PlanCompiler().compile(*shapes.compound, pattern);
          spec::PlanExecutor exec(plan);
          Measured planned = measure_plan(workload, exec, flags);

          Measured inlined = measure_residual(
              workload,
              synth::residual::specialized_fn(list_length, values, mod_lists,
                                              /*last_only=*/false),
              flags);

          print_row({std::to_string(list_length), std::to_string(values),
                     std::to_string(mod_lists), std::to_string(percent),
                     fmt_ms(generic.seconds), fmt_ms(planned.seconds),
                     fmt_ms(inlined.seconds),
                     fmt_x(generic.seconds / planned.seconds),
                     fmt_x(generic.seconds / inlined.seconds)});
        }
      }
    }
  }
  std::printf(
      "\npaper shape: speedup grows as fewer lists may contain modified\n"
      "elements (2-9x at 1 int/elem, up to ~6x at 10 ints, length-5 lists);\n"
      "eliminating whole-list traversal dominates the win.\n");
  return 0;
}
