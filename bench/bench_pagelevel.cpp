// The paper's motivating comparison (§1): system-level page-granularity
// incremental checkpointing vs language-level object-granularity.
//
// "Object-oriented programming style encourages the creation of many small
// objects ... it is impossible to ensure that frequently modified objects
// are all stored in the same page." We rebuild the synthetic workload
// inside an mprotect-tracked arena, run the same mutation patterns, and
// compare checkpoint *content size* and construction time between:
//   page  — dump of dirty 4 KiB pages (mprotect/SIGSEGV tracking)
//   object— the generic incremental object checkpoint
//
// Object records here are tens of bytes; a single dirty field costs a full
// page at page granularity. The gap is the paper's justification for
// language-level incremental checkpointing of OO programs.
#include <chrono>

#include "bench/bench_util.hpp"
#include "pagetrack/arena.hpp"

using namespace ickpt;
using namespace ickpt::bench;

namespace {

/// Plain-data replica of ListElem living in the tracked arena. No vtable:
/// page-level checkpointing dumps raw memory, so we keep it POD-ish.
struct RawElem {
  std::int32_t nvals;
  std::int32_t vals[10];
  RawElem* next;
};

struct RawCompound {
  RawElem* lists[5];
};

struct RawWorkload {
  pagetrack::PageArena arena;
  std::vector<RawCompound*> compounds;

  RawWorkload(std::size_t n, int list_length, int values)
      : arena(n * (sizeof(RawCompound) +
                   5 * static_cast<std::size_t>(list_length) *
                       sizeof(RawElem)) +
              (1u << 20)) {
    compounds.reserve(n);
    for (std::size_t s = 0; s < n; ++s) {
      auto* compound = arena.make<RawCompound>();
      for (int i = 0; i < 5; ++i) {
        RawElem* head = nullptr;
        RawElem* tail = nullptr;
        for (int k = 0; k < list_length; ++k) {
          auto* elem = arena.make<RawElem>();
          elem->nvals = values;
          for (int v = 0; v < values; ++v) elem->vals[v] = v;
          elem->next = nullptr;
          if (head == nullptr)
            head = elem;
          else
            tail->next = elem;
          tail = elem;
        }
        compound->lists[i] = head;
      }
      compounds.push_back(compound);
    }
  }

  /// Same mutation pattern as SynthWorkload::mutate with last_element_only.
  std::size_t mutate_tails(int modified_lists, int percent,
                           std::mt19937_64& rng) {
    std::bernoulli_distribution dirty(percent / 100.0);
    std::size_t modified = 0;
    for (RawCompound* compound : compounds) {
      for (int i = 0; i < modified_lists; ++i) {
        RawElem* elem = compound->lists[i];
        while (elem->next != nullptr) elem = elem->next;
        if (dirty(rng)) {
          elem->vals[0] += 1;
          ++modified;
        }
      }
    }
    return modified;
  }
};

}  // namespace

int main() {
  print_header("Page-level vs object-level incremental checkpointing "
               "(paper §1 motivation; L=5, 10 ints/elem, last-element "
               "positions, 100% of possibly-modified)");
  const std::size_t n = bench_structures();
  std::printf("structures=%zu reps=%d page=%zuB\n\n", n, bench_reps(),
              pagetrack::kPageSize);
  print_row({"mod-lists", "page-bytes", "obj-bytes", "ratio", "page-time",
             "obj-time"},
            13);

  for (int mod_lists : {1, 3, 5}) {
    // --- page-granularity side -------------------------------------------
    RawWorkload raw(n, 5, 10);
    pagetrack::PageTracker tracker(raw.arena);
    std::mt19937_64 rng(42);
    double page_seconds = 0;
    std::size_t page_bytes = 0;
    {
      tracker.protect();  // "previous checkpoint" boundary
      raw.mutate_tails(mod_lists, 100, rng);
      auto t0 = std::chrono::steady_clock::now();
      std::vector<std::uint8_t> payload;
      tracker.write_dirty_pages(payload);
      auto t1 = std::chrono::steady_clock::now();
      page_seconds = std::chrono::duration<double>(t1 - t0).count();
      page_bytes = payload.size();
      tracker.unprotect();
    }

    // --- object-granularity side ------------------------------------------
    synth::SynthConfig config;
    config.num_structures = n;
    config.list_length = 5;
    config.values_per_elem = 10;
    config.modified_lists = mod_lists;
    config.last_element_only = true;
    config.percent_modified = 100;
    core::Heap heap;
    synth::SynthWorkload workload(heap, config);
    workload.reset_flags();
    workload.mutate();
    auto flags = workload.save_flags();
    Measured object =
        measure_generic(workload, core::Mode::kIncremental, flags);

    print_row({std::to_string(mod_lists), fmt_mb(page_bytes),
               fmt_mb(object.bytes),
               fmt_x(static_cast<double>(page_bytes) /
                     static_cast<double>(object.bytes)),
               fmt_ms(page_seconds), fmt_ms(object.seconds)},
              13);
  }

  std::printf(
      "\npaper's point: for many small scattered objects, page-granularity\n"
      "captures orders of magnitude more bytes per incremental checkpoint\n"
      "than object-granularity — hence language-level checkpointing for OO\n"
      "programs. (Page tracking also charges a SIGSEGV per first-touch\n"
      "page, not measured here.)\n");
  return 0;
}
