# Benchmark targets, defined from the root CMakeLists (not via
# add_subdirectory) so that build/bench/ contains ONLY the bench binaries —
# `for b in build/bench/*; do $b; done` then runs the whole harness.
set(ICKPT_BENCHES
  bench_fig07_incremental
  bench_fig08_structure
  bench_fig09_modlists
  bench_fig10_positions
  bench_fig11_jvms
  bench_table1_analysis
  bench_table2_engines
  bench_ablation
  bench_pagelevel
  bench_parallel
  bench_profile
)
foreach(name ${ICKPT_BENCHES})
  add_executable(${name} bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE
    ickpt_verify ickpt_analysis ickpt_synth ickpt_spec ickpt_pagetrack
    ickpt_core ickpt_io)
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR})
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endforeach()

# The profiler harness certifies its own attribution (stage sums within 10%
# of busy time, JSON re-parsed independently), so its reduced grid runs as a
# ctest smoke test under the `profile` label alongside the profiler suite.
add_test(NAME bench_profile_smoke COMMAND bench_profile --smoke)
set_tests_properties(bench_profile_smoke PROPERTIES LABELS "profile")

# The parallel-capture regression gate: on a >= 4-hardware-thread box the
# reduced grid asserts threads=4 capture is no slower than serial; below
# that it reports a skip and passes, so single-core CI stays green.
add_test(NAME bench_parallel_smoke COMMAND bench_parallel --smoke)
set_tests_properties(bench_parallel_smoke PROPERTIES LABELS "parallel")

add_executable(bench_micro bench/bench_micro.cpp)
target_link_libraries(bench_micro PRIVATE
  ickpt_analysis ickpt_synth ickpt_spec ickpt_core ickpt_io
  benchmark::benchmark)
target_include_directories(bench_micro PRIVATE ${CMAKE_SOURCE_DIR})
set_target_properties(bench_micro PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
