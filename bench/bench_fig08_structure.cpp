// Figure 8: specialization with respect to the structure of the compound
// objects — traversal inlined, virtual calls gone, every modified-test kept.
//
// Speedups are over unspecialized incremental checkpointing, as in the
// paper. We report the compiled-plan executor ("plan", the automatic JSpec
// analog) and the fully inlined residual code ("inlined", the Fig. 5-style
// generated source) — the paper's single series corresponds to the latter.
#include "bench/bench_util.hpp"

using namespace ickpt;
using namespace ickpt::bench;

int main() {
  print_header("Figure 8: specialization w.r.t. structure (speedup over "
               "incremental)");
  std::printf("structures=%zu reps=%d\n\n", bench_structures(), bench_reps());
  print_row({"L", "ints/elem", "%modified", "generic", "plan", "inlined",
             "plan-x", "inlined-x"});

  synth::SynthShapes shapes = synth::SynthShapes::make();
  for (int list_length : {1, 5}) {
    for (int values : {1, 10}) {
      for (int percent : {100, 50, 25}) {
        synth::SynthConfig config;
        config.num_structures = bench_structures();
        config.list_length = list_length;
        config.values_per_elem = values;
        config.percent_modified = percent;
        core::Heap heap;
        synth::SynthWorkload workload(heap, config);
        workload.reset_flags();
        workload.mutate();
        auto flags = workload.save_flags();

        Measured generic =
            measure_generic(workload, core::Mode::kIncremental, flags);

        spec::PatternNode pattern = synth::make_synth_pattern(
            synth::SpecLevel::kStructure, list_length, values,
            config.modified_lists);
        spec::Plan plan =
            spec::PlanCompiler().compile(*shapes.compound, pattern);
        spec::PlanExecutor exec(plan);
        Measured planned = measure_plan(workload, exec, flags);

        Measured inlined = measure_residual(
            workload, synth::residual::uniform_fn(list_length, values), flags);

        print_row({std::to_string(list_length), std::to_string(values),
                   std::to_string(percent), fmt_ms(generic.seconds),
                   fmt_ms(planned.seconds), fmt_ms(inlined.seconds),
                   fmt_x(generic.seconds / planned.seconds),
                   fmt_x(generic.seconds / inlined.seconds)});
      }
    }
  }
  std::printf(
      "\npaper shape: 1.5x (all modified, 10 ints) to ~3.5x (long lists, few\n"
      "values): the win comes from devirtualized, inlined traversal.\n");
  return 0;
}
