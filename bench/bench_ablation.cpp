// Ablation benchmarks for the design choices called out in DESIGN.md §5:
//
//   1. Test pruning vs traversal pruning — compile the Fig. 10 pattern with
//      each pruning kind disabled and measure which knowledge buys what.
//   2. Encoding — fixed-width big-endian vs LEB128 varint scalars
//      (checkpoint size and construction time).
//   3. Flag maintenance — mutation cost with intrusive tracking vs the same
//      stores without it (the paper's "extra time on every assignment").
#include <chrono>

#include "bench/bench_util.hpp"

using namespace ickpt;
using namespace ickpt::bench;

namespace {

void ablate_pruning() {
  print_header("Ablation 1: which pruning buys what (Fig. 10 config, "
               "mod-lists=1, last element, L=5, 10 ints)");
  synth::SynthConfig config;
  config.num_structures = bench_structures();
  config.list_length = 5;
  config.values_per_elem = 10;
  config.modified_lists = 1;
  config.last_element_only = true;
  config.percent_modified = 100;
  core::Heap heap;
  synth::SynthWorkload workload(heap, config);
  workload.reset_flags();
  workload.mutate();
  auto flags = workload.save_flags();

  synth::SynthShapes shapes = synth::SynthShapes::make();
  spec::PatternNode pattern = synth::make_synth_pattern(
      synth::SpecLevel::kPositions, config.list_length,
      config.values_per_elem, config.modified_lists);

  Measured generic =
      measure_generic(workload, core::Mode::kIncremental, flags);

  struct Variant {
    const char* name;
    bool prune_tests;
    bool prune_traversal;
  };
  print_row({"variant", "time", "speedup-vs-generic"}, 22);
  print_row({"generic (virtual)", fmt_ms(generic.seconds), "1.00x"}, 22);
  for (const Variant& v :
       {Variant{"no pruning (structure)", false, false},
        Variant{"tests pruned only", true, false},
        Variant{"traversal pruned only", false, true},
        Variant{"both pruned (full)", true, true}}) {
    spec::CompileOptions opts;
    opts.prune_tests = v.prune_tests;
    opts.prune_traversal = v.prune_traversal;
    spec::Plan plan = spec::PlanCompiler(opts).compile(*shapes.compound,
                                                       pattern);
    spec::PlanExecutor exec(plan);
    Measured m = measure_plan(workload, exec, flags);
    print_row({v.name, fmt_ms(m.seconds),
               fmt_x(generic.seconds / m.seconds)},
              22);
  }
  std::printf("expected: traversal pruning dominates when few lists may be\n"
              "modified; test pruning adds a smaller, additive win.\n");
}

void ablate_encoding() {
  print_header("Ablation 2: fixed-width vs varint scalar encoding");
  synth::SynthConfig config;
  config.num_structures = bench_structures();
  config.list_length = 5;
  config.values_per_elem = 10;
  config.percent_modified = 100;
  core::Heap heap;
  synth::SynthWorkload workload(heap, config);
  workload.reset_flags();
  workload.mutate();
  auto flags = workload.save_flags();

  synth::SynthShapes shapes = synth::SynthShapes::make();
  spec::PatternNode pattern = synth::make_synth_pattern(
      synth::SpecLevel::kStructure, config.list_length,
      config.values_per_elem, config.modified_lists);

  print_row({"encoding", "time", "ckpt size"}, 16);
  for (bool varint : {false, true}) {
    spec::CompileOptions opts;
    opts.varint_scalars = varint;
    spec::Plan plan = spec::PlanCompiler(opts).compile(*shapes.compound,
                                                       pattern);
    spec::PlanExecutor exec(plan);
    Measured m = measure_plan(workload, exec, flags);
    print_row({varint ? "varint" : "fixed-be", fmt_ms(m.seconds),
               fmt_mb(m.bytes)},
              16);
  }
  std::printf("expected: varints shrink checkpoints of small values at some\n"
              "encoding cost; Table 1 sizes assume fixed-width (Java\n"
              "DataOutputStream semantics).\n");
}

void ablate_flag_maintenance() {
  print_header("Ablation 3: intrusive flag maintenance cost on mutation");
  synth::SynthConfig config;
  config.num_structures = bench_structures();
  config.list_length = 5;
  config.values_per_elem = 10;
  core::Heap heap;
  synth::SynthWorkload workload(heap, config);

  using clock = std::chrono::steady_clock;
  // Tracked: the normal mutator path (store + set_modified per value).
  auto t0 = clock::now();
  std::size_t touched = 0;
  for (synth::Compound* compound : workload.roots()) {
    for (int i = 0; i < synth::Compound::kLists; ++i) {
      for (synth::ListElem* e = compound->list(i); e != nullptr;
           e = e->next()) {
        e->set_value(0, 42);
        ++touched;
      }
    }
  }
  auto t1 = clock::now();
  // Baseline: identical volume of reads/branch work without the flag store,
  // approximated by re-reading and summing the same fields.
  std::int64_t sink = 0;
  for (synth::Compound* compound : workload.roots()) {
    for (int i = 0; i < synth::Compound::kLists; ++i) {
      for (synth::ListElem* e = compound->list(i); e != nullptr;
           e = e->next()) {
        sink += e->value(0);
      }
    }
  }
  auto t2 = clock::now();
  double tracked = std::chrono::duration<double>(t1 - t0).count();
  double baseline = std::chrono::duration<double>(t2 - t1).count();
  print_row({"mutations", std::to_string(touched)}, 16);
  print_row({"tracked", fmt_ms(tracked)}, 16);
  print_row({"read-only", fmt_ms(baseline)}, 16);
  std::printf("(sink=%lld) the delta bounds the paper's 'extra time on every\n"
              "assignment to update the associated flag'. Fig. 7 already\n"
              "showed the end-to-end cost is negligible.\n",
              static_cast<long long>(sink));
}

}  // namespace

int main() {
  ablate_pruning();
  ablate_encoding();
  ablate_flag_maintenance();
  return 0;
}
